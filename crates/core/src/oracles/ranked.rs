//! The Partially Perfect oracle: class `P<` (§6.2), realistic.

use super::{build_suspect_history, mix, perfect_edits, Oracle};
use crate::pattern::FailurePattern;
use crate::process::ProcessSet;
use crate::time::Time;
use crate::History;

/// A realistic Partially Perfect (`P<`) failure detector generator.
///
/// `P<` keeps the strong accuracy of `P` but weakens completeness: when
/// `pᵢ` crashes, only correct processes `pⱼ` with `j > i` must eventually
/// permanently suspect it. Lower-index observers learn nothing — "a
/// process `pᵢ` has no knowledge about any process `pⱼ` such that `j > i`"
/// (§6.2). The paper uses `P<` to show that, even restricted to realistic
/// detectors with unbounded failures, *correct-restricted* consensus is
/// solvable below `P`, hence uniform consensus is strictly harder.
///
/// # Examples
///
/// ```
/// use rfd_core::oracles::{Oracle, RankedOracle};
/// use rfd_core::{FailurePattern, ProcessId, Time};
///
/// let oracle = RankedOracle::new(5, 0);
/// let f = FailurePattern::new(3).with_crash(ProcessId::new(1), Time::new(10));
/// let h = oracle.generate(&f, Time::new(100), 0);
/// // p2 (higher index) detects the crash of p1...
/// assert!(h.value(ProcessId::new(2), Time::new(15)).contains(ProcessId::new(1)));
/// // ...but p0 (lower index) never does.
/// assert!(h.value(ProcessId::new(0), Time::new(100)).is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct RankedOracle {
    base_delay: u64,
    jitter: u64,
}

impl RankedOracle {
    /// Creates a `P<` oracle with detection latency in
    /// `[base_delay, base_delay + jitter]` ticks (for obliged observers).
    #[must_use]
    pub fn new(base_delay: u64, jitter: u64) -> Self {
        Self { base_delay, jitter }
    }
}

impl Default for RankedOracle {
    fn default() -> Self {
        Self::new(5, 3)
    }
}

impl Oracle for RankedOracle {
    type Value = ProcessSet;

    fn name(&self) -> &'static str {
        "partially-perfect"
    }

    fn generate(&self, pattern: &FailurePattern, horizon: Time, seed: u64) -> History<ProcessSet> {
        let far = horizon.next().advance(1);
        let events = perfect_edits(pattern, horizon, |observer, crashed| {
            if observer.index() > crashed.index() {
                let j = if self.jitter == 0 {
                    0
                } else {
                    mix(seed, observer.index() as u64, crashed.index() as u64) % (self.jitter + 1)
                };
                self.base_delay + j
            } else {
                // Push the edit past the horizon: lower-index observers
                // never suspect.
                far.ticks()
            }
        });
        build_suspect_history(pattern.num_processes(), events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{class_report, ClassId};
    use crate::process::ProcessId;
    use crate::properties::CheckParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn histories_are_partially_perfect() {
        let oracle = RankedOracle::new(4, 2);
        let mut rng = StdRng::seed_from_u64(21);
        let horizon = Time::new(500);
        let params = CheckParams::with_margin(horizon, 50);
        for seed in 0..20 {
            let f = FailurePattern::random(6, 5, Time::new(300), &mut rng);
            let h = oracle.generate(&f, horizon, seed);
            let report = class_report(&f, &h, &params);
            assert!(report.is_in(ClassId::PartiallyPerfect), "{f:?}");
            assert!(report.strong_accuracy.is_ok(), "{f:?}");
        }
    }

    #[test]
    fn strictly_weaker_than_perfect_when_low_index_crashes() {
        // p0 crashes; a correct observer (p1) exists above it, so strong
        // completeness... holds for p0. The gap appears when the *highest*
        // crashed process has correct observers only below it — impossible
        // by definition; the real gap: crash of p2 with observers p0, p1.
        let oracle = RankedOracle::new(4, 0);
        let f = FailurePattern::new(3).with_crash(p(2), Time::new(10));
        let h = oracle.generate(&f, Time::new(200), 0);
        let report = class_report(&f, &h, &CheckParams::new(Time::new(200)));
        assert!(report.is_in(ClassId::PartiallyPerfect));
        // Nobody above p2 exists: no process ever suspects it.
        assert!(!report.is_in(ClassId::Perfect));
        assert!(report.strong_completeness.is_err());
    }

    #[test]
    fn lower_index_observers_stay_silent() {
        let oracle = RankedOracle::new(2, 0);
        let f = FailurePattern::new(4)
            .with_crash(p(1), Time::new(5))
            .with_crash(p(2), Time::new(7));
        let h = oracle.generate(&f, Time::new(100), 0);
        assert!(h.value(p(0), Time::new(100)).is_empty());
        // p3 sees both crashes.
        assert!(h.value(p(3), Time::new(10)).contains(p(1)));
        assert!(h.value(p(3), Time::new(10)).contains(p(2)));
        // p2 sees p1's crash (2 > 1) but p1 never sees p2's.
        assert!(h.value(p(2), Time::new(10)).contains(p(1)));
        assert!(!h.value(p(1), Time::new(100)).contains(p(2)));
    }
}
