//! The Perfect oracle: class `P`, realistic.

use super::{build_suspect_history, mix, perfect_edits, Oracle};
use crate::pattern::FailurePattern;
use crate::process::ProcessSet;
use crate::time::Time;
use crate::History;

/// A realistic Perfect failure detector generator.
///
/// Every observer `pⱼ` starts suspecting a crashed `pᵢ` exactly
/// `base_delay + jitter(seed, i, j)` ticks after the crash, and never
/// suspects a process that has not crashed. The output at any time is a
/// function of the crashes that already happened, so the oracle is
/// realistic in the sense of §3.1.
///
/// # Examples
///
/// ```
/// use rfd_core::oracles::{Oracle, PerfectOracle};
/// use rfd_core::{FailurePattern, ProcessId, Time};
///
/// let oracle = PerfectOracle::new(5, 3);
/// let f = FailurePattern::new(3).with_crash(ProcessId::new(0), Time::new(10));
/// let h = oracle.generate(&f, Time::new(100), 42);
/// // No suspicion before the crash...
/// assert!(h.value(ProcessId::new(1), Time::new(9)).is_empty());
/// // ...and a permanent one at most 5+3 ticks after it.
/// assert!(h.value(ProcessId::new(1), Time::new(18)).contains(ProcessId::new(0)));
/// ```
#[derive(Clone, Debug)]
pub struct PerfectOracle {
    base_delay: u64,
    jitter: u64,
}

impl PerfectOracle {
    /// Creates a Perfect oracle with detection latency in
    /// `[base_delay, base_delay + jitter]` ticks.
    #[must_use]
    pub fn new(base_delay: u64, jitter: u64) -> Self {
        Self { base_delay, jitter }
    }

    /// Maximum detection latency of the oracle.
    #[must_use]
    pub fn max_delay(&self) -> u64 {
        self.base_delay + self.jitter
    }
}

impl Default for PerfectOracle {
    fn default() -> Self {
        Self::new(5, 3)
    }
}

impl Oracle for PerfectOracle {
    type Value = ProcessSet;

    fn name(&self) -> &'static str {
        "perfect"
    }

    fn generate(&self, pattern: &FailurePattern, horizon: Time, seed: u64) -> History<ProcessSet> {
        let events = perfect_edits(pattern, horizon, |observer, crashed| {
            let j = if self.jitter == 0 {
                0
            } else {
                mix(seed, observer.index() as u64, crashed.index() as u64) % (self.jitter + 1)
            };
            self.base_delay + j
        });
        build_suspect_history(pattern.num_processes(), events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{class_report, ClassId};
    use crate::process::ProcessId;
    use crate::properties::CheckParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn generated_histories_are_perfect() {
        let oracle = PerfectOracle::new(4, 2);
        let mut rng = StdRng::seed_from_u64(7);
        let horizon = Time::new(500);
        let params = CheckParams::with_margin(horizon, 50);
        for seed in 0..20 {
            // Crashes must precede the stabilization window by at least
            // the max detection latency for completeness to be checkable.
            let f = FailurePattern::random(6, 5, Time::new(300), &mut rng);
            let h = oracle.generate(&f, horizon, seed);
            let report = class_report(&f, &h, &params);
            assert!(
                report.is_in(ClassId::Perfect),
                "seed {seed}, pattern {f:?}: {report:?}"
            );
        }
    }

    #[test]
    fn detection_latency_is_bounded() {
        let oracle = PerfectOracle::new(5, 3);
        let f = FailurePattern::new(4).with_crash(p(2), Time::new(50));
        let h = oracle.generate(&f, Time::new(200), 99);
        for obs in 0..4 {
            let first = crate::properties::first_suspicion(&h, p(obs), p(2), Time::new(200))
                .expect("crash must be detected");
            assert!(first >= Time::new(55) && first <= Time::new(58), "{first}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let oracle = PerfectOracle::new(5, 5);
        let f = FailurePattern::new(4).with_crash(p(1), Time::new(10));
        let a = oracle.generate(&f, Time::new(100), 1);
        let b = oracle.generate(&f, Time::new(100), 1);
        let c = oracle.generate(&f, Time::new(100), 2);
        assert_eq!(a, b);
        // Different seed may (and here does) shift jitter.
        let _ = c;
    }

    #[test]
    fn all_correct_pattern_yields_silent_history() {
        let oracle = PerfectOracle::default();
        let f = FailurePattern::new(5);
        let h = oracle.generate(&f, Time::new(100), 0);
        for i in 0..5 {
            assert!(h.value(p(i), Time::new(100)).is_empty());
        }
    }
}
