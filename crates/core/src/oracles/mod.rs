//! Oracle generators: executable failure detectors.
//!
//! The paper defines a failure detector `D` as a function mapping each
//! failure pattern `F` to a *set* of histories `D(F)` (§2.2). We make that
//! executable with the [`Oracle`] trait: a deterministic generator that,
//! given a pattern, a horizon and a `seed`, produces one history of
//! `D(F)`; the set `D(F)` is the image of the generator over all seeds.
//!
//! The module provides one generator per detector discussed in the paper:
//!
//! * [`PerfectOracle`] — class `P`, realistic.
//! * [`EventuallyPerfectOracle`] — class `◇P`, realistic (false suspicions
//!   before a global stabilization time).
//! * [`EventuallyStrongOracle`] — class `◇S \ ◇P`, realistic.
//! * [`RankedOracle`] — class `P<` (§6.2), realistic.
//! * [`ScribeOracle`] — the Scribe `C` (§3.2.1), realistic, in `P`.
//! * [`MaraboutOracle`] — the Marabout `M` (§3.2.2), **not** realistic.
//! * [`StrongOracle`] — a Strong-but-not-Perfect detector, which is
//!   necessarily **not** realistic (§6.3).
//! * [`WeakWitnessOracle`] — weak completeness (one witness per crash),
//!   the input to the completeness-boosting transformation.

mod eventually;
mod marabout;
mod perfect;
mod ranked;
mod scribe;
mod strong;
mod weak;

pub use eventually::{EventuallyPerfectOracle, EventuallyStrongOracle};
pub use marabout::MaraboutOracle;
pub use perfect::PerfectOracle;
pub use ranked::RankedOracle;
pub use scribe::{scribe_suspects, PatternPrefix, ScribeOracle};
pub use strong::StrongOracle;
pub use weak::WeakWitnessOracle;

use crate::pattern::FailurePattern;
use crate::process::{ProcessId, ProcessSet};
use crate::time::Time;
use crate::History;

/// A deterministic generator of failure detector histories.
///
/// `D(F)` of the paper is `{ generate(F, horizon, s) | s ∈ u64 }`. For
/// *realistic* detectors the generated history depends only on the prefix
/// of `F`, never on future crashes; the [`crate::realism`] module checks
/// exactly that.
pub trait Oracle {
    /// The range `R_D` of the detector.
    type Value: Clone + Eq;

    /// Human-readable detector name (for reports and tables).
    fn name(&self) -> &'static str;

    /// Generates one history of `D(pattern)` covering `[0, horizon]`.
    ///
    /// Implementations must be deterministic in `(pattern, horizon, seed)`.
    fn generate(&self, pattern: &FailurePattern, horizon: Time, seed: u64) -> History<Self::Value>;
}

/// Splitmix64-style mixer for deterministic per-(seed, key) jitter.
#[must_use]
pub(crate) fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One suspicion edit in a per-observer event list.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum Edit {
    /// Start suspecting the process.
    Add(ProcessId),
    /// Stop suspecting the process.
    Remove(ProcessId),
}

/// Builds a suspect-set history from per-observer edit lists.
///
/// Events may be given in any order; they are applied in time order
/// (stable: adds and removes at the same tick apply in list order).
pub(crate) fn build_suspect_history(
    n: usize,
    mut events: Vec<Vec<(Time, Edit)>>,
) -> History<ProcessSet> {
    assert_eq!(events.len(), n);
    let mut history = History::new(n, ProcessSet::empty());
    for (observer_ix, list) in events.iter_mut().enumerate() {
        list.sort_by_key(|(t, _)| *t);
        let observer = ProcessId::new(observer_ix);
        let mut current = ProcessSet::empty();
        let mut i = 0;
        while i < list.len() {
            let t = list[i].0;
            while i < list.len() && list[i].0 == t {
                match list[i].1 {
                    Edit::Add(pid) => {
                        current.insert(pid);
                    }
                    Edit::Remove(pid) => {
                        current.remove(pid);
                    }
                }
                i += 1;
            }
            history.set_from(observer, t, current);
        }
    }
    history
}

/// Convenience: the suspicion edits a *perfect* component contributes —
/// every observer starts permanently suspecting each crashed process
/// `delay_of(observer, crashed)` ticks after its crash.
pub(crate) fn perfect_edits(
    pattern: &FailurePattern,
    horizon: Time,
    mut delay_of: impl FnMut(ProcessId, ProcessId) -> u64,
) -> Vec<Vec<(Time, Edit)>> {
    let n = pattern.num_processes();
    let mut events: Vec<Vec<(Time, Edit)>> = vec![Vec::new(); n];
    for (crashed, ct) in pattern.iter() {
        let Some(ct) = ct else { continue };
        for (observer_ix, observer_events) in events.iter_mut().enumerate() {
            let observer = ProcessId::new(observer_ix);
            let at = ct.advance(delay_of(observer, crashed));
            if at <= horizon {
                observer_events.push((at, Edit::Add(crashed)));
            }
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix(1, 2, 3), mix(1, 2, 3));
        assert_ne!(mix(1, 2, 3), mix(1, 3, 2));
        assert_ne!(mix(1, 2, 3), mix(2, 2, 3));
    }

    #[test]
    fn build_history_applies_edits_in_time_order() {
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        let events = vec![
            vec![
                (Time::new(10), Edit::Add(p1)),
                (Time::new(5), Edit::Add(p0)),
                (Time::new(7), Edit::Remove(p0)),
            ],
            vec![],
        ];
        let h = build_suspect_history(2, events);
        assert!(h.value(p0, Time::new(5)).contains(p0));
        assert!(!h.value(p0, Time::new(7)).contains(p0));
        assert!(h.value(p0, Time::new(10)).contains(p1));
        assert!(h.value(p1, Time::new(999)).is_empty());
    }

    #[test]
    fn same_tick_edits_apply_in_list_order() {
        let p0 = ProcessId::new(0);
        let events = vec![vec![
            (Time::new(3), Edit::Add(p0)),
            (Time::new(3), Edit::Remove(p0)),
        ]];
        let h = build_suspect_history(1, events);
        assert!(h.value(p0, Time::new(3)).is_empty());
    }
}
