//! A Strong-but-not-Perfect oracle — necessarily non-realistic (§6.3).

use super::{build_suspect_history, mix, perfect_edits, Edit, Oracle};
use crate::pattern::FailurePattern;
use crate::process::ProcessSet;
use crate::time::Time;
use crate::History;

/// A Strong (`S`) failure detector generator that is *not* Perfect.
///
/// §6.3 of the paper proves that such a detector **cannot be realistic**:
/// if a realistic detector ever falsely suspects `pᵢ`, then — since it
/// cannot see the future — there is an indistinguishable extension where
/// everybody else crashes and `pᵢ` is the only correct process, violating
/// weak accuracy. `S ∩ R ⊂ P`.
///
/// This generator exhibits the obstruction concretely by *peeking at the
/// future*: it picks the immune process as the lowest-index **correct**
/// process of the pattern (a fact not knowable at runtime) and falsely
/// suspects other correct processes before GST. Its histories are Strong
/// (the immune process is never suspected; crashes are detected), some are
/// not Perfect, and the realism check of [`crate::realism`] rejects the
/// oracle.
#[derive(Clone, Debug)]
pub struct StrongOracle {
    detection_delay: u64,
    false_suspicion_window: Time,
}

impl StrongOracle {
    /// Creates a Strong oracle: crashes detected after `detection_delay`
    /// ticks; false suspicions of non-immune correct processes occur
    /// before `false_suspicion_window`.
    #[must_use]
    pub fn new(detection_delay: u64, false_suspicion_window: Time) -> Self {
        Self {
            detection_delay,
            false_suspicion_window,
        }
    }
}

impl Default for StrongOracle {
    fn default() -> Self {
        Self::new(5, Time::new(50))
    }
}

impl Oracle for StrongOracle {
    type Value = ProcessSet;

    fn name(&self) -> &'static str {
        "strong-clairvoyant"
    }

    fn generate(&self, pattern: &FailurePattern, horizon: Time, seed: u64) -> History<ProcessSet> {
        let n = pattern.num_processes();
        // Future peek: the immune process is the lowest-index CORRECT one.
        let immune = pattern.correct().min();
        let mut events = perfect_edits(pattern, horizon, |_, _| self.detection_delay);
        // Before the window closes, each observer briefly (and falsely)
        // suspects every correct process except the immune one — the
        // paper's "some process is falsely suspected" premise.
        for (observer_ix, observer_events) in events.iter_mut().enumerate() {
            for target in pattern.correct() {
                if Some(target) == immune {
                    continue;
                }
                let r = mix(seed, observer_ix as u64, target.index() as u64);
                let win = self.false_suspicion_window.ticks().max(2);
                let start = Time::new(r % (win / 2).max(1));
                let end = start.advance(1 + r % (win / 2).max(1)).min(horizon);
                if start < end {
                    observer_events.push((start, Edit::Add(target)));
                    observer_events.push((end, Edit::Remove(target)));
                }
            }
        }
        build_suspect_history(n, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{class_report, ClassId};
    use crate::process::ProcessId;
    use crate::properties::CheckParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn histories_are_strong() {
        let oracle = StrongOracle::new(4, Time::new(60));
        let mut rng = StdRng::seed_from_u64(31);
        let horizon = Time::new(500);
        let params = CheckParams::with_margin(horizon, 50);
        for seed in 0..25 {
            // Keep ≥1 correct process (weak accuracy needs one).
            let f = FailurePattern::random(6, 5, Time::new(300), &mut rng);
            let h = oracle.generate(&f, horizon, seed);
            let report = class_report(&f, &h, &params);
            assert!(
                report.is_in(ClassId::Strong),
                "seed {seed}, {f:?}: {:?} / {:?}",
                report.strong_completeness,
                report.weak_accuracy
            );
        }
    }

    #[test]
    fn some_history_is_not_perfect() {
        // With ≥2 correct processes a false suspicion occurs.
        let oracle = StrongOracle::new(4, Time::new(60));
        let f = FailurePattern::new(4).with_crash(p(3), Time::new(100));
        let h = oracle.generate(&f, Time::new(400), 3);
        let report = class_report(&f, &h, &CheckParams::new(Time::new(400)));
        assert!(report.is_in(ClassId::Strong));
        assert!(!report.is_in(ClassId::Perfect));
    }

    #[test]
    fn immune_process_is_never_suspected() {
        let oracle = StrongOracle::new(4, Time::new(60));
        let f = FailurePattern::new(5).with_crash(p(0), Time::new(30));
        // Immune = lowest-index correct = p1.
        let h = oracle.generate(&f, Time::new(300), 9);
        for obs in 0..5 {
            assert_eq!(
                crate::properties::first_suspicion(&h, p(obs), p(1), Time::new(300)),
                None
            );
        }
    }
}
