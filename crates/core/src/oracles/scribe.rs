//! The Scribe oracle `C` (§3.2.1): realistic, in `P`.

use super::Oracle;
use crate::pattern::FailurePattern;
use crate::process::{ProcessId, ProcessSet};
use crate::time::Time;
use crate::History;
use serde::{Deserialize, Serialize};

/// The range value of the Scribe: the failure pattern *up to now*, `F[t]`.
///
/// The Scribe "sees what happens at all processes at real time and takes
/// notes of what it sees": at time `t` it outputs the list of values of
/// `F` up to `t`. Because `F` is monotone, that list is fully described by
/// the crash times that are already visible.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PatternPrefix {
    visible_crashes: Vec<Option<Time>>,
}

impl PatternPrefix {
    /// The prefix of `pattern` visible at time `t` (crash times ≤ `t`).
    #[must_use]
    pub fn at(pattern: &FailurePattern, t: Time) -> Self {
        Self {
            visible_crashes: pattern
                .iter()
                .map(|(_, ct)| ct.filter(|c| *c <= t))
                .collect(),
        }
    }

    /// The crash time of `pid` recorded in this prefix, if visible.
    #[must_use]
    pub fn crash_time(&self, pid: ProcessId) -> Option<Time> {
        self.visible_crashes.get(pid.index()).copied().flatten()
    }

    /// The set of processes recorded as crashed.
    #[must_use]
    pub fn crashed(&self) -> ProcessSet {
        let mut s = ProcessSet::empty();
        for (ix, ct) in self.visible_crashes.iter().enumerate() {
            if ct.is_some() {
                s.insert(ProcessId::new(ix));
            }
        }
        s
    }
}

/// The Scribe failure detector `C` of §3.2.1.
///
/// `C(F)` is a singleton: the history where every module outputs `F[t]`
/// at every time `t`. The Scribe is obviously realistic — its notes at
/// time `t` are a function of `F` up to `t` — and it belongs to `P`
/// (project its output with [`scribe_suspects`] to get a Perfect
/// suspect-set history with zero detection latency).
#[derive(Clone, Debug, Default)]
pub struct ScribeOracle;

impl ScribeOracle {
    /// Creates the Scribe.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Oracle for ScribeOracle {
    type Value = PatternPrefix;

    fn name(&self) -> &'static str {
        "scribe"
    }

    fn generate(
        &self,
        pattern: &FailurePattern,
        horizon: Time,
        _seed: u64,
    ) -> History<PatternPrefix> {
        let n = pattern.num_processes();
        let mut history = History::new(n, PatternPrefix::at(pattern, Time::ZERO));
        let mut crash_times: Vec<Time> = pattern
            .iter()
            .filter_map(|(_, ct)| ct)
            .filter(|c| *c <= horizon && *c > Time::ZERO)
            .collect();
        crash_times.sort_unstable();
        crash_times.dedup();
        for t in crash_times {
            let prefix = PatternPrefix::at(pattern, t);
            for ix in 0..n {
                history.set_from(ProcessId::new(ix), t, prefix.clone());
            }
        }
        history
    }
}

/// Projects a Scribe history onto the suspect-set range: at every time,
/// suspect exactly the processes the notes record as crashed. The result
/// is a Perfect history (instant, exact detection).
#[must_use]
pub fn scribe_suspects(history: &History<PatternPrefix>) -> History<ProcessSet> {
    let n = history.num_processes();
    let mut out = History::new(n, history.value(ProcessId::new(0), Time::ZERO).crashed());
    for ix in 0..n {
        let pid = ProcessId::new(ix);
        for (t, prefix) in history.changes(pid) {
            out.set_from(pid, t, prefix.crashed());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{class_report, ClassId};
    use crate::properties::CheckParams;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn scribe_records_crashes_at_their_exact_time() {
        let f = FailurePattern::new(3)
            .with_crash(p(0), Time::new(10))
            .with_crash(p(2), Time::new(30));
        let h = ScribeOracle::new().generate(&f, Time::new(100), 0);
        let before = h.value(p(1), Time::new(9));
        assert!(before.crashed().is_empty());
        let mid = h.value(p(1), Time::new(10));
        assert_eq!(mid.crashed(), ProcessSet::singleton(p(0)));
        assert_eq!(mid.crash_time(p(0)), Some(Time::new(10)));
        assert_eq!(mid.crash_time(p(2)), None);
        let late = h.value(p(1), Time::new(30));
        assert_eq!(late.crashed().len(), 2);
    }

    #[test]
    fn scribe_projection_is_perfect() {
        let f = FailurePattern::new(4)
            .with_crash(p(1), Time::new(20))
            .with_crash(p(3), Time::new(60));
        let h = ScribeOracle::new().generate(&f, Time::new(200), 0);
        let suspects = scribe_suspects(&h);
        let report = class_report(&f, &suspects, &CheckParams::new(Time::new(200)));
        assert!(report.is_in(ClassId::Perfect));
    }

    #[test]
    fn scribe_is_singleton_per_pattern() {
        let f = FailurePattern::new(3).with_crash(p(0), Time::new(5));
        let o = ScribeOracle::new();
        assert_eq!(
            o.generate(&f, Time::new(50), 1),
            o.generate(&f, Time::new(50), 999)
        );
    }
}
