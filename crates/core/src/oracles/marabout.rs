//! The Marabout oracle `M` (§3.2.2): clairvoyant, **not** realistic.

use super::Oracle;
use crate::pattern::FailurePattern;
use crate::process::ProcessSet;
use crate::time::Time;
use crate::History;

/// The Marabout failure detector `M` of §3.2.2 (after Guerraoui, IPL 2001).
///
/// For any failure pattern `F`, at every process and every time, `M`
/// outputs the **constant** list of the faulty processes of `F` — the
/// processes that have crashed *or will crash*. `M` belongs to both `◇P`
/// and `S`, yet it is incomparable with `P`: "`M` is accurate about the
/// future whereas `P` is accurate about the past".
///
/// `M` is the paper's canonical **non-realistic** detector: it guesses the
/// future and cannot be implemented even in a perfectly synchronous
/// system. The realism checker rejects it with the exact pattern pair of
/// §3.2.2 (see [`crate::realism`]).
///
/// # Examples
///
/// ```
/// use rfd_core::oracles::{MaraboutOracle, Oracle};
/// use rfd_core::{FailurePattern, ProcessId, Time};
///
/// let f = FailurePattern::new(3).with_crash(ProcessId::new(1), Time::new(1_000));
/// let h = MaraboutOracle::new().generate(&f, Time::new(100), 0);
/// // At time 0 — long before the crash — p1 is already suspected.
/// assert!(h.value(ProcessId::new(0), Time::ZERO).contains(ProcessId::new(1)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct MaraboutOracle;

impl MaraboutOracle {
    /// Creates the Marabout.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Oracle for MaraboutOracle {
    type Value = ProcessSet;

    fn name(&self) -> &'static str {
        "marabout"
    }

    fn generate(
        &self,
        pattern: &FailurePattern,
        _horizon: Time,
        _seed: u64,
    ) -> History<ProcessSet> {
        // M(F) is a singleton: every module outputs faulty(F) forever.
        History::new(pattern.num_processes(), pattern.faulty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{class_report, ClassId};
    use crate::process::ProcessId;
    use crate::properties::CheckParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn marabout_is_in_strong_and_eventually_perfect_but_not_perfect() {
        let mut rng = StdRng::seed_from_u64(13);
        let horizon = Time::new(400);
        let params = CheckParams::with_margin(horizon, 40);
        for _ in 0..30 {
            let f = FailurePattern::random(6, 5, Time::new(300), &mut rng);
            let h = MaraboutOracle::new().generate(&f, horizon, 0);
            let report = class_report(&f, &h, &params);
            assert!(report.is_in(ClassId::Strong), "{f:?}");
            assert!(report.is_in(ClassId::EventuallyPerfect), "{f:?}");
            if f.num_faulty() > 0
                && f.iter()
                    .any(|(_, ct)| matches!(ct, Some(c) if c > Time::ZERO))
            {
                // Suspecting a process before its (positive-time) crash
                // violates strong accuracy.
                assert!(!report.is_in(ClassId::Perfect), "{f:?}");
            }
        }
    }

    #[test]
    fn output_is_constant_over_time_and_processes() {
        let f = FailurePattern::new(4)
            .with_crash(p(0), Time::new(10))
            .with_crash(p(2), Time::new(90));
        let h = MaraboutOracle::new().generate(&f, Time::new(200), 7);
        let expected = f.faulty();
        for obs in 0..4 {
            for t in [0u64, 5, 50, 200] {
                assert_eq!(*h.value(p(obs), Time::new(t)), expected);
            }
        }
    }
}
