//! A weakly-complete oracle: crashes are detected by only one witness.

use super::{build_suspect_history, mix, Edit, Oracle};
use crate::pattern::FailurePattern;
use crate::process::{ProcessId, ProcessSet};
use crate::time::Time;
use crate::History;

/// A realistic oracle with **weak** completeness and strong accuracy:
/// each crash is eventually detected by exactly one (seed-chosen) correct
/// witness, and nobody is ever falsely suspected.
///
/// Chandra–Toueg's classes `Q` and `W` pair weak completeness with
/// (eventual) weak accuracy; their famous observation is that weak
/// completeness can be *boosted* to strong completeness by gossiping
/// suspicions — the transformation implemented in
/// `rfd_algo::reduction::CompletenessBooster`. This oracle exists to
/// exercise that transformation: it is deliberately **not** in `P`
/// (strong completeness fails whenever ≥ 2 correct processes remain),
/// while the boosted output is.
#[derive(Clone, Debug)]
pub struct WeakWitnessOracle {
    detection_delay: u64,
}

impl WeakWitnessOracle {
    /// Creates the oracle; the witness notices a crash
    /// `detection_delay` ticks late.
    #[must_use]
    pub fn new(detection_delay: u64) -> Self {
        Self { detection_delay }
    }

    /// The witness assigned to a crashed process: a deterministic,
    /// seed-dependent choice among processes that are **still alive at
    /// detection time** (a past-determined choice, hence realistic).
    #[must_use]
    pub fn witness_of(
        &self,
        pattern: &FailurePattern,
        crashed: ProcessId,
        seed: u64,
    ) -> Option<ProcessId> {
        let ct = pattern.crash_time(crashed)?;
        let at = ct.advance(self.detection_delay);
        let candidates: Vec<ProcessId> = pattern
            .crashed_at(at)
            .complement_within(pattern.num_processes())
            .iter()
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let pick = mix(seed, crashed.index() as u64, 0x5EED) as usize % candidates.len();
        Some(candidates[pick])
    }
}

impl Default for WeakWitnessOracle {
    fn default() -> Self {
        Self::new(5)
    }
}

impl Oracle for WeakWitnessOracle {
    type Value = ProcessSet;

    fn name(&self) -> &'static str {
        "weak-witness"
    }

    fn generate(&self, pattern: &FailurePattern, horizon: Time, seed: u64) -> History<ProcessSet> {
        let n = pattern.num_processes();
        let mut events: Vec<Vec<(Time, Edit)>> = vec![Vec::new(); n];
        for (crashed, ct) in pattern.iter() {
            let Some(ct) = ct else { continue };
            // Witness succession: the duty to suspect `crashed` moves to
            // a fresh survivor whenever the current witness itself
            // crashes (each hand-off is a function of past crashes only,
            // so the oracle stays realistic).
            let mut at = ct.advance(self.detection_delay);
            let mut hop = 0u64;
            while at <= horizon {
                let candidates: Vec<ProcessId> =
                    pattern.crashed_at(at).complement_within(n).iter().collect();
                if candidates.is_empty() {
                    break;
                }
                let pick =
                    mix(seed, crashed.index() as u64, 0x5EED + hop) as usize % candidates.len();
                let witness = candidates[pick];
                events[witness.index()].push((at, Edit::Add(crashed)));
                match pattern.crash_time(witness) {
                    // The witness later crashes: hand off.
                    Some(wct) => {
                        at = wct.advance(self.detection_delay);
                        hop += 1;
                    }
                    None => break, // a correct witness holds it forever
                }
            }
        }
        build_suspect_history(n, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{class_report, ClassId};
    use crate::properties::CheckParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn weakly_complete_strongly_accurate() {
        let oracle = WeakWitnessOracle::new(4);
        let mut rng = StdRng::seed_from_u64(5);
        let horizon = Time::new(400);
        let params = CheckParams::with_margin(horizon, 40);
        for seed in 0..20 {
            let f = FailurePattern::random(6, 5, Time::new(200), &mut rng);
            let h = oracle.generate(&f, horizon, seed);
            let report = class_report(&f, &h, &params);
            assert!(report.weak_completeness.is_ok(), "{f:?}: {report:?}");
            assert!(report.strong_accuracy.is_ok(), "{f:?}");
        }
    }

    #[test]
    fn strong_completeness_fails_with_multiple_survivors() {
        let oracle = WeakWitnessOracle::new(4);
        let f = FailurePattern::new(4).with_crash(p(0), Time::new(50));
        let h = oracle.generate(&f, Time::new(400), 0);
        let report = class_report(&f, &h, &CheckParams::new(Time::new(400)));
        // Exactly one of p1..p3 suspects p0: strong completeness fails.
        assert!(report.strong_completeness.is_err());
        assert!(!report.is_in(ClassId::Perfect));
    }

    #[test]
    fn witness_is_alive_at_detection_time() {
        let oracle = WeakWitnessOracle::new(4);
        let f = FailurePattern::new(5)
            .with_crash(p(0), Time::new(10))
            .with_crash(p(1), Time::new(12));
        for seed in 0..50 {
            let w = oracle.witness_of(&f, p(0), seed).unwrap();
            assert!(
                !f.is_crashed(w, Time::new(14)),
                "seed {seed}: dead witness {w}"
            );
        }
    }

    #[test]
    fn witness_choice_is_deterministic_per_seed() {
        let oracle = WeakWitnessOracle::new(4);
        let f = FailurePattern::new(5).with_crash(p(2), Time::new(10));
        assert_eq!(
            oracle.witness_of(&f, p(2), 7),
            oracle.witness_of(&f, p(2), 7)
        );
    }
}
