//! Failure detector histories (§2.2).
//!
//! A failure detector history `H` with range `R` is a function
//! `H : Ω × Φ → R`: `H(pᵢ, t)` is the value output by the module `Dᵢ` at
//! time `t`. We store each process's output as a piecewise-constant
//! timeline of change points, which is exact for every detector in this
//! crate and keeps histories compact over long horizons.

use crate::process::ProcessId;
use crate::time::Time;
use core::fmt;
use serde::{Deserialize, Serialize};

/// Per-process piecewise-constant output timeline.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
struct Timeline<R> {
    /// Change points `(t, value)`, strictly increasing in `t`, with the
    /// first entry at `Time::ZERO`.
    changes: Vec<(Time, R)>,
}

impl<R: Clone + Eq> Timeline<R> {
    fn new(initial: R) -> Self {
        Self {
            changes: vec![(Time::ZERO, initial)],
        }
    }

    fn value_at(&self, t: Time) -> &R {
        // Last change point ≤ t; the first entry is at ZERO so this
        // always exists.
        match self.changes.binary_search_by_key(&t, |(ct, _)| *ct) {
            Ok(ix) => &self.changes[ix].1,
            Err(ix) => &self.changes[ix - 1].1,
        }
    }

    fn set_from(&mut self, t: Time, value: R) {
        let last = self
            .changes
            .last()
            .expect("timeline always has an entry at ZERO");
        assert!(
            t >= last.0,
            "history updates must be appended in non-decreasing time order"
        );
        if *self.value_at(t) == value {
            return;
        }
        if last.0 == t {
            self.changes.last_mut().expect("nonempty").1 = value;
            // Collapse a no-op change that became redundant.
            let len = self.changes.len();
            if len >= 2 && self.changes[len - 2].1 == self.changes[len - 1].1 {
                self.changes.pop();
            }
        } else {
            self.changes.push((t, value));
        }
    }
}

/// A failure detector history `H : Ω × Φ → R`.
///
/// Histories are built by appending change points in non-decreasing time
/// order per process (the natural order in which an oracle or simulator
/// produces them) and queried at arbitrary times.
///
/// # Examples
///
/// ```
/// use rfd_core::{History, ProcessId, ProcessSet, Time};
///
/// let mut h: History<ProcessSet> = History::new(3, ProcessSet::empty());
/// let p0 = ProcessId::new(0);
/// // p0 starts suspecting p2 at t=5.
/// h.set_from(p0, Time::new(5), ProcessSet::singleton(ProcessId::new(2)));
/// assert!(h.value(p0, Time::new(4)).is_empty());
/// assert!(h.value(p0, Time::new(5)).contains(ProcessId::new(2)));
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct History<R> {
    n: usize,
    timelines: Vec<Timeline<R>>,
}

impl<R: Clone + Eq> History<R> {
    /// Creates a history over `n` processes whose every module initially
    /// outputs `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize, initial: R) -> Self {
        assert!(n > 0, "history needs at least one process");
        Self {
            n,
            timelines: vec![Timeline::new(initial); n],
        }
    }

    /// Number of processes.
    #[must_use]
    pub fn num_processes(&self) -> usize {
        self.n
    }

    /// `H(pid, t)`: the value output by `pid`'s module at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    #[must_use]
    pub fn value(&self, pid: ProcessId, t: Time) -> &R {
        self.timelines[pid.index()].value_at(t)
    }

    /// Sets `pid`'s output to `value` from time `t` onward (until the next
    /// change point).
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range or `t` precedes an existing change
    /// point for `pid` (updates must be appended in time order).
    pub fn set_from(&mut self, pid: ProcessId, t: Time, value: R) {
        self.timelines[pid.index()].set_from(t, value);
    }

    /// Tests `∀ t₁ ≤ t, ∀ pᵢ : H(pᵢ, t₁) = H′(pᵢ, t₁)` — the prefix
    /// equality used by the realism definition (§3.1).
    #[must_use]
    pub fn eq_up_to(&self, other: &History<R>, t: Time) -> bool {
        if self.n != other.n {
            return false;
        }
        for ix in 0..self.n {
            let a = &self.timelines[ix];
            let b = &self.timelines[ix];
            let _ = (a, b);
            if !timeline_eq_up_to(&self.timelines[ix], &other.timelines[ix], t) {
                return false;
            }
        }
        true
    }

    /// All change points `(t, value)` of `pid`'s module, in time order.
    pub fn changes(&self, pid: ProcessId) -> impl Iterator<Item = (Time, &R)> + '_ {
        self.timelines[pid.index()]
            .changes
            .iter()
            .map(|(t, v)| (*t, v))
    }

    /// The largest change-point time across all processes (useful as a
    /// natural horizon when scanning a generated history).
    #[must_use]
    pub fn last_change(&self) -> Time {
        self.timelines
            .iter()
            .filter_map(|tl| tl.changes.last().map(|(t, _)| *t))
            .max()
            .unwrap_or(Time::ZERO)
    }
}

fn timeline_eq_up_to<R: Clone + Eq>(a: &Timeline<R>, b: &Timeline<R>, t: Time) -> bool {
    // Compare the sequences of change points restricted to [0, t]. Two
    // piecewise-constant functions agree on [0, t] iff their restricted
    // change sequences (after collapsing no-ops, which set_from maintains)
    // are identical.
    let cut = |tl: &Timeline<R>| -> Vec<(Time, R)> {
        tl.changes
            .iter()
            .filter(|(ct, _)| *ct <= t)
            .cloned()
            .collect()
    };
    cut(a) == cut(b)
}

impl<R: fmt::Debug> fmt::Debug for History<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "History[n={}]", self.n)?;
        for (ix, tl) in self.timelines.iter().enumerate() {
            write!(f, "  p{ix}:")?;
            for (t, v) in &tl.changes {
                write!(f, " {t}→{v:?}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::ProcessSet;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn initial_value_everywhere() {
        let h: History<u32> = History::new(2, 7);
        assert_eq!(*h.value(p(0), Time::ZERO), 7);
        assert_eq!(*h.value(p(1), Time::new(1_000_000)), 7);
    }

    #[test]
    fn change_points_take_effect_from_their_time() {
        let mut h: History<u32> = History::new(1, 0);
        h.set_from(p(0), Time::new(10), 1);
        h.set_from(p(0), Time::new(20), 2);
        assert_eq!(*h.value(p(0), Time::new(9)), 0);
        assert_eq!(*h.value(p(0), Time::new(10)), 1);
        assert_eq!(*h.value(p(0), Time::new(19)), 1);
        assert_eq!(*h.value(p(0), Time::new(20)), 2);
        assert_eq!(*h.value(p(0), Time::new(999)), 2);
    }

    #[test]
    fn redundant_updates_collapse() {
        let mut h: History<u32> = History::new(1, 0);
        h.set_from(p(0), Time::new(5), 0); // no-op
        h.set_from(p(0), Time::new(6), 1);
        h.set_from(p(0), Time::new(6), 0); // overwrite back at same tick
        assert_eq!(h.changes(p(0)).count(), 1);
        assert_eq!(*h.value(p(0), Time::new(100)), 0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_update_panics() {
        let mut h: History<u32> = History::new(1, 0);
        h.set_from(p(0), Time::new(10), 1);
        h.set_from(p(0), Time::new(9), 2);
    }

    #[test]
    fn prefix_equality() {
        let mut h1: History<u32> = History::new(2, 0);
        let mut h2: History<u32> = History::new(2, 0);
        h1.set_from(p(0), Time::new(5), 1);
        h2.set_from(p(0), Time::new(5), 1);
        h1.set_from(p(1), Time::new(8), 3);
        h2.set_from(p(1), Time::new(9), 3);
        assert!(h1.eq_up_to(&h2, Time::new(7)));
        assert!(!h1.eq_up_to(&h2, Time::new(8)));
    }

    #[test]
    fn suspect_set_history() {
        let mut h: History<ProcessSet> = History::new(2, ProcessSet::empty());
        h.set_from(p(1), Time::new(3), ProcessSet::singleton(p(0)));
        assert!(h.value(p(1), Time::new(3)).contains(p(0)));
        assert!(h.value(p(0), Time::new(3)).is_empty());
        assert_eq!(h.last_change(), Time::new(3));
    }
}
