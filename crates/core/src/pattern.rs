//! Failure patterns (§2.1).
//!
//! A failure pattern is a function `F : Φ → 2^Ω` where `F(t)` is the set of
//! processes that have crashed *through* time `t`. Crashes are permanent
//! (crash-stop, no recovery), so `F` is monotone: `t ≤ t′ ⇒ F(t) ⊆ F(t′)`.
//! We encode a pattern by the (optional) crash time of each process, which
//! is the unique compact representation of a monotone pattern.
//!
//! The *environment* of the paper is the set of **all** failure patterns —
//! the number of faulty processes is unbounded (any `0..=n` processes may
//! crash). [`FailurePattern::random`] samples from that environment.

use crate::process::{ProcessId, ProcessSet, MAX_PROCESSES};
use crate::time::Time;
use core::fmt;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A crash-stop failure pattern `F : Φ → 2^Ω` over `n` processes.
///
/// # Examples
///
/// ```
/// use rfd_core::{FailurePattern, ProcessId, Time};
///
/// // 4 processes; p1 crashes at t=10.
/// let f = FailurePattern::new(4).with_crash(ProcessId::new(1), Time::new(10));
/// assert!(!f.is_crashed(ProcessId::new(1), Time::new(9)));
/// assert!(f.is_crashed(ProcessId::new(1), Time::new(10)));
/// assert_eq!(f.correct().len(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailurePattern {
    n: usize,
    crash_times: Vec<Option<Time>>,
}

impl FailurePattern {
    /// Creates the all-correct pattern over `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > MAX_PROCESSES`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(
            n > 0 && n <= MAX_PROCESSES,
            "process count {n} out of range"
        );
        Self {
            n,
            crash_times: vec![None; n],
        }
    }

    /// Number of processes in Ω.
    #[must_use]
    pub fn num_processes(&self) -> usize {
        self.n
    }

    /// Schedules `pid` to crash at time `t` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range for this pattern.
    #[must_use]
    pub fn with_crash(mut self, pid: ProcessId, t: Time) -> Self {
        self.set_crash(pid, t);
        self
    }

    /// Schedules `pid` to crash at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range for this pattern.
    pub fn set_crash(&mut self, pid: ProcessId, t: Time) {
        assert!(pid.index() < self.n, "{pid} out of range (n={})", self.n);
        self.crash_times[pid.index()] = Some(t);
    }

    /// Removes any scheduled crash of `pid`.
    pub fn clear_crash(&mut self, pid: ProcessId) {
        assert!(pid.index() < self.n, "{pid} out of range (n={})", self.n);
        self.crash_times[pid.index()] = None;
    }

    /// The crash time of `pid`, or `None` if `pid` is correct in `F`.
    #[must_use]
    pub fn crash_time(&self, pid: ProcessId) -> Option<Time> {
        self.crash_times.get(pid.index()).copied().flatten()
    }

    /// `F(t)`: the processes crashed through time `t`.
    #[must_use]
    pub fn crashed_at(&self, t: Time) -> ProcessSet {
        let mut s = ProcessSet::empty();
        for (ix, ct) in self.crash_times.iter().enumerate() {
            if matches!(ct, Some(c) if *c <= t) {
                s.insert(ProcessId::new(ix));
            }
        }
        s
    }

    /// Whether `pid` has crashed through time `t` (i.e. `pid ∈ F(t)`).
    #[must_use]
    pub fn is_crashed(&self, pid: ProcessId, t: Time) -> bool {
        matches!(self.crash_time(pid), Some(c) if c <= t)
    }

    /// `correct(F)`: the processes that never crash.
    #[must_use]
    pub fn correct(&self) -> ProcessSet {
        let mut s = ProcessSet::empty();
        for (ix, ct) in self.crash_times.iter().enumerate() {
            if ct.is_none() {
                s.insert(ProcessId::new(ix));
            }
        }
        s
    }

    /// `faulty(F)`: the processes that crash at some time.
    #[must_use]
    pub fn faulty(&self) -> ProcessSet {
        self.correct().complement_within(self.n)
    }

    /// Number of faulty processes in the pattern.
    #[must_use]
    pub fn num_faulty(&self) -> usize {
        self.faulty().len()
    }

    /// Tests whether `self` and `other` agree up to (and including) time
    /// `t`: `∀ t₁ ≤ t, F(t₁) = F′(t₁)`.
    ///
    /// This is the similarity relation used by the realism definition
    /// (§3.1): a realistic detector must not distinguish two patterns that
    /// share a prefix.
    #[must_use]
    pub fn agrees_up_to(&self, other: &FailurePattern, t: Time) -> bool {
        if self.n != other.n {
            return false;
        }
        for ix in 0..self.n {
            let a = self.crash_times[ix];
            let b = other.crash_times[ix];
            let a_vis = matches!(a, Some(c) if c <= t);
            let b_vis = matches!(b, Some(c) if c <= t);
            match (a_vis, b_vis) {
                (true, true) => {
                    if a != b {
                        return false;
                    }
                }
                (false, false) => {}
                _ => return false,
            }
        }
        true
    }

    /// Returns the pattern truncated at `t`: crashes after `t` are erased.
    ///
    /// The result is the minimal pattern agreeing with `self` up to `t` in
    /// which every process not yet crashed is correct — the "everyone else
    /// survives" extension used in the paper's indistinguishability
    /// arguments (Lemma 4.1, §6.3).
    #[must_use]
    pub fn prefix(&self, t: Time) -> FailurePattern {
        let mut p = FailurePattern::new(self.n);
        for ix in 0..self.n {
            if let Some(c) = self.crash_times[ix] {
                if c <= t {
                    p.crash_times[ix] = Some(c);
                }
            }
        }
        p
    }

    /// Samples a pattern from the unbounded-failure environment: each of a
    /// uniformly chosen number of faulty processes (`0..=max_faulty`)
    /// crashes at a uniform time in `[0, horizon)`.
    ///
    /// # Panics
    ///
    /// Panics if `max_faulty > n` or `horizon == Time::ZERO`.
    #[must_use]
    pub fn random<R: Rng + ?Sized>(
        n: usize,
        max_faulty: usize,
        horizon: Time,
        rng: &mut R,
    ) -> Self {
        assert!(max_faulty <= n, "max_faulty {max_faulty} exceeds n={n}");
        assert!(horizon > Time::ZERO, "horizon must be positive");
        let mut p = FailurePattern::new(n);
        let f = rng.gen_range(0..=max_faulty);
        let mut chosen = ProcessSet::empty();
        while chosen.len() < f {
            chosen.insert(ProcessId::new(rng.gen_range(0..n)));
        }
        for pid in chosen {
            let t = Time::new(rng.gen_range(0..horizon.ticks()));
            p.set_crash(pid, t);
        }
        p
    }

    /// Iterates over `(ProcessId, Option<Time>)` crash entries.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, Option<Time>)> + '_ {
        self.crash_times
            .iter()
            .enumerate()
            .map(|(ix, ct)| (ProcessId::new(ix), *ct))
    }
}

impl fmt::Debug for FailurePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F[n={};", self.n)?;
        let mut any = false;
        for (pid, ct) in self.iter() {
            if let Some(c) = ct {
                if any {
                    write!(f, ",")?;
                }
                write!(f, " {pid}@{c}")?;
                any = true;
            }
        }
        if !any {
            write!(f, " all-correct")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for FailurePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn all_correct_by_default() {
        let f = FailurePattern::new(5);
        assert_eq!(f.correct().len(), 5);
        assert!(f.faulty().is_empty());
        assert_eq!(f.num_faulty(), 0);
        assert!(f.crashed_at(Time::new(1_000)).is_empty());
    }

    #[test]
    fn crash_visibility_is_monotone() {
        let f = FailurePattern::new(3).with_crash(p(2), Time::new(7));
        assert!(!f.is_crashed(p(2), Time::new(6)));
        assert!(f.is_crashed(p(2), Time::new(7)));
        assert!(f.is_crashed(p(2), Time::new(1_000_000)));
        assert!(f
            .crashed_at(Time::new(6))
            .is_subset(&f.crashed_at(Time::new(8))));
    }

    #[test]
    fn faulty_and_correct_partition_omega() {
        let f = FailurePattern::new(4)
            .with_crash(p(0), Time::new(1))
            .with_crash(p(3), Time::new(9));
        assert!(f.faulty().is_disjoint(&f.correct()));
        assert_eq!(f.faulty().union(f.correct()), ProcessSet::full(4));
    }

    #[test]
    fn agreement_up_to_prefix_time() {
        // The paper's Marabout example (§3.2.2): F1 = p0 crashes at 10,
        // F2 = all correct. They agree up to time 9 but not at 10.
        let f1 = FailurePattern::new(4).with_crash(p(0), Time::new(10));
        let f2 = FailurePattern::new(4);
        assert!(f1.agrees_up_to(&f2, Time::new(9)));
        assert!(!f1.agrees_up_to(&f2, Time::new(10)));
        assert!(f1.agrees_up_to(&f1.clone(), Time::MAX));
    }

    #[test]
    fn agreement_requires_equal_crash_times() {
        let f1 = FailurePattern::new(2).with_crash(p(0), Time::new(3));
        let f2 = FailurePattern::new(2).with_crash(p(0), Time::new(5));
        assert!(f1.agrees_up_to(&f2, Time::new(2)));
        assert!(!f1.agrees_up_to(&f2, Time::new(3)));
        assert!(!f1.agrees_up_to(&f2, Time::new(4)));
        // Different sizes never agree.
        let f3 = FailurePattern::new(3);
        assert!(!f1.agrees_up_to(&f3, Time::ZERO));
    }

    #[test]
    fn prefix_erases_future_crashes() {
        let f = FailurePattern::new(3)
            .with_crash(p(0), Time::new(2))
            .with_crash(p(1), Time::new(8));
        let pre = f.prefix(Time::new(5));
        assert_eq!(pre.crash_time(p(0)), Some(Time::new(2)));
        assert_eq!(pre.crash_time(p(1)), None);
        assert!(f.agrees_up_to(&pre, Time::new(7)));
        assert!(!f.agrees_up_to(&pre, Time::new(8)));
    }

    #[test]
    fn random_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let f = FailurePattern::random(8, 8, Time::new(100), &mut rng);
            assert!(f.num_faulty() <= 8);
            for (_, ct) in f.iter() {
                if let Some(c) = ct {
                    assert!(c < Time::new(100));
                }
            }
        }
    }

    #[test]
    fn random_with_zero_max_faulty_is_all_correct() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = FailurePattern::random(6, 0, Time::new(10), &mut rng);
        assert_eq!(f.num_faulty(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_processes_panics() {
        let _ = FailurePattern::new(0);
    }
}
