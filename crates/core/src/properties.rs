//! Completeness and accuracy properties of failure detector histories.
//!
//! Chandra–Toueg classes are defined by a *completeness* property paired
//! with an *accuracy* property. This module implements each property as a
//! predicate over a `(FailurePattern, History<ProcessSet>)` pair, returning
//! a [`PropertyViolation`] witness on failure so experiments can report
//! *why* a history fell outside a class.
//!
//! Histories are infinite objects; we check them over a finite window
//! described by [`CheckParams`]. "Eventually/permanently" properties are
//! interpreted as *holding throughout the stabilization window*
//! `[horizon − margin, horizon]` — the standard finite-trace reading, sound
//! for the generators and simulators in this workspace because they
//! quiesce before the window when correctly configured.

use crate::pattern::FailurePattern;
use crate::process::{ProcessId, ProcessSet};
use crate::time::Time;
use crate::History;
use core::fmt;

/// Finite-window parameters for property checks.
///
/// # Examples
///
/// ```
/// use rfd_core::{CheckParams, Time};
///
/// let params = CheckParams::new(Time::new(1_000));
/// assert_eq!(params.horizon, Time::new(1_000));
/// assert!(params.margin > 0);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CheckParams {
    /// Last tick examined.
    pub horizon: Time,
    /// Width (in ticks) of the stabilization window ending at `horizon`,
    /// over which "eventually permanent" properties must hold.
    pub margin: u64,
}

impl CheckParams {
    /// Creates parameters with a default margin of one tenth of the
    /// horizon (at least 1 tick).
    ///
    /// # Panics
    ///
    /// Panics if `horizon == Time::ZERO`.
    #[must_use]
    pub fn new(horizon: Time) -> Self {
        assert!(horizon > Time::ZERO, "horizon must be positive");
        Self {
            horizon,
            margin: (horizon.ticks() / 10).max(1),
        }
    }

    /// Creates parameters with an explicit margin.
    ///
    /// # Panics
    ///
    /// Panics if the margin exceeds the horizon or `horizon == Time::ZERO`.
    #[must_use]
    pub fn with_margin(horizon: Time, margin: u64) -> Self {
        assert!(horizon > Time::ZERO, "horizon must be positive");
        assert!(margin <= horizon.ticks(), "margin exceeds horizon");
        Self { horizon, margin }
    }

    /// Start of the stabilization window.
    #[must_use]
    pub fn window_start(&self) -> Time {
        Time::new(self.horizon.ticks().saturating_sub(self.margin))
    }
}

/// Witness that a history violates a property.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PropertyViolation {
    /// A crashed process was not permanently suspected by an observer that
    /// the property obliges to suspect it.
    MissingSuspicion {
        /// The module that should have suspected.
        observer: ProcessId,
        /// The crashed process.
        crashed: ProcessId,
        /// A window time at which the suspicion was absent.
        at: Time,
    },
    /// A process was suspected before it crashed (strong accuracy breach).
    FalseSuspicion {
        /// The module holding the suspicion.
        observer: ProcessId,
        /// The process wrongly suspected.
        suspect: ProcessId,
        /// The time of the wrongful suspicion.
        at: Time,
    },
    /// No correct process escaped suspicion everywhere (weak accuracy
    /// breach).
    NoImmuneProcess,
    /// A correct process was still suspected inside the stabilization
    /// window (eventual accuracy breach).
    LateSuspicion {
        /// The module holding the suspicion.
        observer: ProcessId,
        /// The correct process still suspected.
        suspect: ProcessId,
        /// A window time at which the suspicion persisted.
        at: Time,
    },
}

impl fmt::Display for PropertyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingSuspicion {
                observer,
                crashed,
                at,
            } => write!(
                f,
                "completeness violation: {observer} does not suspect crashed {crashed} at {at}"
            ),
            Self::FalseSuspicion {
                observer,
                suspect,
                at,
            } => write!(
                f,
                "strong accuracy violation: {observer} suspects {suspect} before it crashed, at {at}"
            ),
            Self::NoImmuneProcess => {
                write!(f, "weak accuracy violation: every correct process was suspected")
            }
            Self::LateSuspicion {
                observer,
                suspect,
                at,
            } => write!(
                f,
                "eventual accuracy violation: {observer} still suspects correct {suspect} at {at}"
            ),
        }
    }
}

/// Outcome of a property check: `Ok(())` or a violation witness.
pub type PropertyResult = Result<(), PropertyViolation>;

/// Returns the first time in `[0, upto]` at which `observer`'s module
/// suspects `suspect`, if any.
#[must_use]
pub fn first_suspicion(
    history: &History<ProcessSet>,
    observer: ProcessId,
    suspect: ProcessId,
    upto: Time,
) -> Option<Time> {
    for (t, v) in history.changes(observer) {
        if t > upto {
            break;
        }
        if v.contains(suspect) {
            return Some(t);
        }
    }
    None
}

/// Tests whether `observer` suspects `suspect` at every time in
/// `[from, to]`.
#[must_use]
pub fn suspected_throughout(
    history: &History<ProcessSet>,
    observer: ProcessId,
    suspect: ProcessId,
    from: Time,
    to: Time,
) -> bool {
    if !history.value(observer, from).contains(suspect) {
        return false;
    }
    history
        .changes(observer)
        .filter(|(t, _)| *t > from && *t <= to)
        .all(|(_, v)| v.contains(suspect))
}

fn first_gap(
    history: &History<ProcessSet>,
    observer: ProcessId,
    suspect: ProcessId,
    from: Time,
    to: Time,
) -> Option<Time> {
    if !history.value(observer, from).contains(suspect) {
        return Some(from);
    }
    history
        .changes(observer)
        .filter(|(t, _)| *t > from && *t <= to)
        .find(|(_, v)| !v.contains(suspect))
        .map(|(t, _)| t)
}

/// **Strong completeness**: eventually every crashed process is permanently
/// suspected by *every* correct process.
pub fn strong_completeness(
    pattern: &FailurePattern,
    history: &History<ProcessSet>,
    params: &CheckParams,
) -> PropertyResult {
    let start = params.window_start();
    for crashed in pattern.faulty() {
        for observer in pattern.correct() {
            if let Some(at) = first_gap(history, observer, crashed, start, params.horizon) {
                return Err(PropertyViolation::MissingSuspicion {
                    observer,
                    crashed,
                    at,
                });
            }
        }
    }
    Ok(())
}

/// **Weak completeness**: eventually every crashed process is permanently
/// suspected by *some* correct process.
pub fn weak_completeness(
    pattern: &FailurePattern,
    history: &History<ProcessSet>,
    params: &CheckParams,
) -> PropertyResult {
    let start = params.window_start();
    let correct = pattern.correct();
    for crashed in pattern.faulty() {
        let mut witness_gap = None;
        let found = correct.iter().any(|observer| {
            match first_gap(history, observer, crashed, start, params.horizon) {
                None => true,
                Some(at) => {
                    witness_gap.get_or_insert((observer, at));
                    false
                }
            }
        });
        if !found {
            let (observer, at) = witness_gap.unwrap_or((crashed, start));
            return Err(PropertyViolation::MissingSuspicion {
                observer,
                crashed,
                at,
            });
        }
    }
    Ok(())
}

/// **Partial completeness** (class `P<` of §6.2): if `pᵢ` crashes, then
/// eventually every correct `pⱼ` with `j > i` permanently suspects `pᵢ`.
pub fn partial_completeness(
    pattern: &FailurePattern,
    history: &History<ProcessSet>,
    params: &CheckParams,
) -> PropertyResult {
    let start = params.window_start();
    for crashed in pattern.faulty() {
        for observer in pattern.correct() {
            if observer.index() <= crashed.index() {
                continue;
            }
            if let Some(at) = first_gap(history, observer, crashed, start, params.horizon) {
                return Err(PropertyViolation::MissingSuspicion {
                    observer,
                    crashed,
                    at,
                });
            }
        }
    }
    Ok(())
}

/// **Strong accuracy**: no process is suspected (by any module) before it
/// crashes: `∀ pⱼ, t : H(pⱼ, t) ⊆ F(t)`.
pub fn strong_accuracy(
    pattern: &FailurePattern,
    history: &History<ProcessSet>,
    params: &CheckParams,
) -> PropertyResult {
    for observer_ix in 0..pattern.num_processes() {
        let observer = ProcessId::new(observer_ix);
        for (t, suspects) in history.changes(observer) {
            if t > params.horizon {
                break;
            }
            // F is monotone, so checking at the segment start suffices.
            let premature = suspects.difference(pattern.crashed_at(t));
            if let Some(suspect) = premature.min() {
                return Err(PropertyViolation::FalseSuspicion {
                    observer,
                    suspect,
                    at: t,
                });
            }
        }
    }
    Ok(())
}

/// **Weak accuracy**: some correct process is never suspected by anyone.
pub fn weak_accuracy(
    pattern: &FailurePattern,
    history: &History<ProcessSet>,
    params: &CheckParams,
) -> PropertyResult {
    let n = pattern.num_processes();
    if pattern.correct().is_empty() {
        // With no correct process the property is vacuous (no correct
        // process can be misled); every detector satisfies it.
        return Ok(());
    }
    let immune_exists = pattern.correct().iter().any(|candidate| {
        (0..n).all(|obs_ix| {
            first_suspicion(history, ProcessId::new(obs_ix), candidate, params.horizon).is_none()
        })
    });
    if immune_exists {
        Ok(())
    } else {
        Err(PropertyViolation::NoImmuneProcess)
    }
}

/// **Eventual strong accuracy**: eventually no correct process is suspected
/// by any correct process (checked over the stabilization window).
pub fn eventual_strong_accuracy(
    pattern: &FailurePattern,
    history: &History<ProcessSet>,
    params: &CheckParams,
) -> PropertyResult {
    let start = params.window_start();
    let correct = pattern.correct();
    for observer in correct {
        for suspect in correct {
            if suspected_in_window(history, observer, suspect, start, params.horizon) {
                let at = if history.value(observer, start).contains(suspect) {
                    start
                } else {
                    history
                        .changes(observer)
                        .filter(|(t, v)| *t > start && *t <= params.horizon && v.contains(suspect))
                        .map(|(t, _)| t)
                        .next()
                        .unwrap_or(start)
                };
                return Err(PropertyViolation::LateSuspicion {
                    observer,
                    suspect,
                    at,
                });
            }
        }
    }
    Ok(())
}

/// **Eventual weak accuracy**: eventually some correct process is no longer
/// suspected by any correct process (checked over the stabilization
/// window).
pub fn eventual_weak_accuracy(
    pattern: &FailurePattern,
    history: &History<ProcessSet>,
    params: &CheckParams,
) -> PropertyResult {
    let start = params.window_start();
    let correct = pattern.correct();
    if correct.is_empty() {
        return Ok(());
    }
    let immune_exists = correct.iter().any(|candidate| {
        correct.iter().all(|observer| {
            !suspected_in_window(history, observer, candidate, start, params.horizon)
        })
    });
    if immune_exists {
        Ok(())
    } else {
        Err(PropertyViolation::NoImmuneProcess)
    }
}

fn suspected_in_window(
    history: &History<ProcessSet>,
    observer: ProcessId,
    suspect: ProcessId,
    from: Time,
    to: Time,
) -> bool {
    if history.value(observer, from).contains(suspect) {
        return true;
    }
    history
        .changes(observer)
        .filter(|(t, _)| *t > from && *t <= to)
        .any(|(_, v)| v.contains(suspect))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// 3 processes, p0 crashes at t=10; p1/p2 suspect it from t=15.
    fn perfect_scenario() -> (FailurePattern, History<ProcessSet>, CheckParams) {
        let pattern = FailurePattern::new(3).with_crash(p(0), Time::new(10));
        let mut h = History::new(3, ProcessSet::empty());
        h.set_from(p(1), Time::new(15), ProcessSet::singleton(p(0)));
        h.set_from(p(2), Time::new(15), ProcessSet::singleton(p(0)));
        (pattern, h, CheckParams::new(Time::new(100)))
    }

    #[test]
    fn perfect_history_satisfies_perfect_properties() {
        let (pattern, h, params) = perfect_scenario();
        assert_eq!(strong_completeness(&pattern, &h, &params), Ok(()));
        assert_eq!(strong_accuracy(&pattern, &h, &params), Ok(()));
        assert_eq!(weak_completeness(&pattern, &h, &params), Ok(()));
        assert_eq!(weak_accuracy(&pattern, &h, &params), Ok(()));
        assert_eq!(eventual_strong_accuracy(&pattern, &h, &params), Ok(()));
        assert_eq!(eventual_weak_accuracy(&pattern, &h, &params), Ok(()));
        assert_eq!(partial_completeness(&pattern, &h, &params), Ok(()));
    }

    #[test]
    fn missing_suspicion_breaks_strong_but_not_weak_completeness() {
        let pattern = FailurePattern::new(3).with_crash(p(0), Time::new(10));
        let mut h = History::new(3, ProcessSet::empty());
        // Only p1 suspects; p2 never does.
        h.set_from(p(1), Time::new(15), ProcessSet::singleton(p(0)));
        let params = CheckParams::new(Time::new(100));
        assert!(matches!(
            strong_completeness(&pattern, &h, &params),
            Err(PropertyViolation::MissingSuspicion { observer, crashed, .. })
                if observer == p(2) && crashed == p(0)
        ));
        assert_eq!(weak_completeness(&pattern, &h, &params), Ok(()));
    }

    #[test]
    fn premature_suspicion_breaks_strong_accuracy() {
        let pattern = FailurePattern::new(3).with_crash(p(0), Time::new(10));
        let mut h = History::new(3, ProcessSet::empty());
        h.set_from(p(1), Time::new(5), ProcessSet::singleton(p(0)));
        let params = CheckParams::new(Time::new(100));
        assert!(matches!(
            strong_accuracy(&pattern, &h, &params),
            Err(PropertyViolation::FalseSuspicion { observer, suspect, at })
                if observer == p(1) && suspect == p(0) && at == Time::new(5)
        ));
    }

    #[test]
    fn retracted_false_suspicion_still_breaks_strong_accuracy() {
        // A mistake that is later corrected still violates strong accuracy
        // (it never violates eventual accuracy though).
        let pattern = FailurePattern::new(2);
        let mut h = History::new(2, ProcessSet::empty());
        h.set_from(p(1), Time::new(5), ProcessSet::singleton(p(0)));
        h.set_from(p(1), Time::new(6), ProcessSet::empty());
        let params = CheckParams::new(Time::new(100));
        assert!(strong_accuracy(&pattern, &h, &params).is_err());
        assert_eq!(eventual_strong_accuracy(&pattern, &h, &params), Ok(()));
    }

    #[test]
    fn weak_accuracy_needs_one_immune_correct_process() {
        let pattern = FailurePattern::new(3);
        let mut h = History::new(3, ProcessSet::empty());
        // Everyone suspects everyone else briefly.
        h.set_from(p(0), Time::new(1), ProcessSet::singleton(p(1)));
        h.set_from(p(1), Time::new(1), ProcessSet::singleton(p(2)));
        h.set_from(p(2), Time::new(1), ProcessSet::singleton(p(0)));
        let params = CheckParams::new(Time::new(100));
        assert_eq!(
            weak_accuracy(&pattern, &h, &params),
            Err(PropertyViolation::NoImmuneProcess)
        );
        // Retract one suspicion: p1 becomes immune... no, p1 is suspected
        // by p0. Make p0 never suspect anyone instead.
        let mut h2 = History::new(3, ProcessSet::empty());
        h2.set_from(p(1), Time::new(1), ProcessSet::singleton(p(2)));
        h2.set_from(p(2), Time::new(1), ProcessSet::singleton(p(0)));
        assert_eq!(weak_accuracy(&pattern, &h2, &params), Ok(()));
    }

    #[test]
    fn late_suspicion_of_correct_breaks_eventual_strong_accuracy() {
        let pattern = FailurePattern::new(2);
        let mut h = History::new(2, ProcessSet::empty());
        // Inside the stabilization window [90, 100], p0 suspects correct p1.
        h.set_from(p(0), Time::new(95), ProcessSet::singleton(p(1)));
        let params = CheckParams::new(Time::new(100));
        assert!(matches!(
            eventual_strong_accuracy(&pattern, &h, &params),
            Err(PropertyViolation::LateSuspicion { .. })
        ));
    }

    #[test]
    fn partial_completeness_ignores_lower_index_observers() {
        // p2 crashes; p0 and p1 have lower index so they owe nothing.
        let pattern = FailurePattern::new(3).with_crash(p(2), Time::new(10));
        let h = History::new(3, ProcessSet::empty());
        let params = CheckParams::new(Time::new(100));
        assert_eq!(partial_completeness(&pattern, &h, &params), Ok(()));
        // p0 crashes; p1, p2 must suspect it.
        let pattern2 = FailurePattern::new(3).with_crash(p(0), Time::new(10));
        assert!(partial_completeness(&pattern2, &h, &params).is_err());
    }

    #[test]
    fn suspected_throughout_and_first_suspicion() {
        let mut h = History::new(2, ProcessSet::empty());
        h.set_from(p(0), Time::new(10), ProcessSet::singleton(p(1)));
        h.set_from(p(0), Time::new(20), ProcessSet::empty());
        h.set_from(p(0), Time::new(30), ProcessSet::singleton(p(1)));
        assert_eq!(
            first_suspicion(&h, p(0), p(1), Time::new(100)),
            Some(Time::new(10))
        );
        assert_eq!(first_suspicion(&h, p(0), p(1), Time::new(9)), None);
        assert!(suspected_throughout(
            &h,
            p(0),
            p(1),
            Time::new(10),
            Time::new(19)
        ));
        assert!(!suspected_throughout(
            &h,
            p(0),
            p(1),
            Time::new(10),
            Time::new(25)
        ));
        assert!(suspected_throughout(
            &h,
            p(0),
            p(1),
            Time::new(30),
            Time::new(999)
        ));
    }
}
