//! # rfd-core — the formal model of *A Realistic Look At Failure Detectors*
//!
//! This crate implements the vocabulary of Delporte-Gallet, Fauconnier and
//! Guerraoui's DSN 2002 paper: the asynchronous crash-stop system model
//! (§2), the failure detector abstraction and its classes (§2.2), and the
//! **realism** property (§3) that excludes detectors able to guess the
//! future.
//!
//! ## Layout
//!
//! * [`ProcessId`], [`ProcessSet`], [`Time`] — the universe Ω and the
//!   global clock Φ.
//! * [`FailurePattern`] — `F : Φ → 2^Ω` (crash-stop, unbounded failures).
//! * [`History`] — detector histories `H : Ω × Φ → R`.
//! * [`properties`] — completeness/accuracy predicates with violation
//!   witnesses; [`classes`] — the classes `P`, `S`, `◇P`, `◇S`, `P<`.
//! * [`oracles`] — executable generators for each detector the paper
//!   discusses, including the Scribe (§3.2.1) and the clairvoyant
//!   Marabout (§3.2.2).
//! * [`realism`] — the §3.1 prefix-indistinguishability check.
//! * [`lattice`] — class containment laws.
//!
//! ## Quick example
//!
//! ```
//! use rfd_core::oracles::{MaraboutOracle, Oracle, PerfectOracle};
//! use rfd_core::realism::{check_realism, RealismCheck};
//! use rfd_core::{FailurePattern, ProcessId, Time};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let battery = RealismCheck::default();
//! // The Perfect oracle is realistic...
//! assert!(check_realism(&PerfectOracle::default(), 4, 10, &battery, &mut rng).is_ok());
//! // ...the clairvoyant Marabout is not (§3.2.2).
//! assert!(check_realism(&MaraboutOracle::new(), 4, 10, &battery, &mut rng).is_err());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod classes;
pub mod history;
pub mod lattice;
pub mod oracles;
pub mod pattern;
pub mod process;
pub mod properties;
pub mod realism;
pub mod time;

pub use classes::{check_class, class_report, ClassId, ClassReport};
pub use history::History;
pub use lattice::{respects_lattice, IMPLICATIONS};
pub use pattern::FailurePattern;
pub use process::{ProcessId, ProcessSet, MAX_PROCESSES};
pub use properties::{CheckParams, PropertyResult, PropertyViolation};
pub use realism::{RealismCheck, RealismResult, RealismViolation};
pub use time::Time;
