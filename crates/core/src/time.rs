//! The global discrete clock Φ.
//!
//! The paper assumes a discrete global clock whose ticks range over the
//! natural numbers (§2). The clock is a proof/simulation device only: it is
//! *not* accessible to the processes. [`Time`] is the tick type used by
//! failure patterns, histories, and the simulator.

use core::fmt;
use serde::{Deserialize, Serialize};

/// A tick of the global discrete clock Φ.
///
/// # Examples
///
/// ```
/// use rfd_core::Time;
///
/// let t = Time::new(10);
/// assert!(Time::ZERO < t);
/// assert_eq!(t.next(), Time::new(11));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Time(u64);

impl Time {
    /// The first tick.
    pub const ZERO: Time = Time(0);

    /// The maximum representable tick.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a tick from a raw tick count.
    #[must_use]
    pub const fn new(ticks: u64) -> Self {
        Self(ticks)
    }

    /// Raw tick count.
    #[must_use]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// The immediately following tick (saturating).
    #[must_use]
    pub const fn next(self) -> Self {
        Self(self.0.saturating_add(1))
    }

    /// The immediately preceding tick, or `ZERO` at the origin.
    #[must_use]
    pub const fn prev(self) -> Self {
        Self(self.0.saturating_sub(1))
    }

    /// This tick advanced by `delta` ticks (saturating).
    #[must_use]
    pub const fn advance(self, delta: u64) -> Self {
        Self(self.0.saturating_add(delta))
    }

    /// Number of ticks from `earlier` to `self`, or zero if `earlier` is
    /// later.
    #[must_use]
    pub const fn since(self, earlier: Time) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for Time {
    fn from(ticks: u64) -> Self {
        Self(ticks)
    }
}

impl From<Time> for u64 {
    fn from(t: Time) -> Self {
        t.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_ticks() {
        assert!(Time::new(3) < Time::new(4));
        assert_eq!(Time::ZERO, Time::new(0));
    }

    #[test]
    fn next_prev_saturate() {
        assert_eq!(Time::ZERO.prev(), Time::ZERO);
        assert_eq!(Time::MAX.next(), Time::MAX);
        assert_eq!(Time::new(5).next(), Time::new(6));
    }

    #[test]
    fn since_is_saturating_difference() {
        assert_eq!(Time::new(10).since(Time::new(4)), 6);
        assert_eq!(Time::new(4).since(Time::new(10)), 0);
    }

    #[test]
    fn advance_adds_ticks() {
        assert_eq!(Time::new(2).advance(5), Time::new(7));
    }
}
