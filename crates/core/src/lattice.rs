//! The class lattice and its containment laws.
//!
//! Chandra–Toueg order the classes by the "is stronger than" reduction
//! relation `⪰` (§2.5). Property containment gives the lattice edges used
//! throughout the paper; [`respects_lattice`] verifies that a concrete
//! [`ClassReport`] is consistent with them (used as a property-based test
//! on every oracle, and as a sanity layer under experiment E10).
//!
//! The paper's headline result is that among *realistic* detectors in the
//! unbounded-failure environment this lattice **collapses**: `S ∩ R ⊂ P`
//! (§6.3) and `P` is the weakest class solving consensus and terminating
//! reliable broadcast (§4, §5).

use crate::classes::{ClassId, ClassReport};

/// The containment edges `(stronger, weaker)`: membership in the first
/// class implies membership in the second, for every history.
///
/// `P<` is *not* above or below `S`/`◇S` in general — its completeness is
/// incomparable with strong completeness restricted by accuracy — but
/// `P ⪰ P<` holds (strong completeness implies partial completeness).
pub const IMPLICATIONS: [(ClassId, ClassId); 5] = [
    (ClassId::Perfect, ClassId::Strong),
    (ClassId::Perfect, ClassId::EventuallyPerfect),
    (ClassId::Perfect, ClassId::PartiallyPerfect),
    (ClassId::Strong, ClassId::EventuallyStrong),
    (ClassId::EventuallyPerfect, ClassId::EventuallyStrong),
];

/// Checks that a report satisfies every containment law, returning the
/// first violated edge otherwise.
///
/// # Examples
///
/// ```
/// use rfd_core::{class_report, respects_lattice, CheckParams, FailurePattern,
///                History, ProcessSet, Time};
///
/// let pattern = FailurePattern::new(3);
/// let history = History::new(3, ProcessSet::empty());
/// let report = class_report(&pattern, &history, &CheckParams::new(Time::new(100)));
/// assert!(respects_lattice(&report).is_ok());
/// ```
pub fn respects_lattice(report: &ClassReport) -> Result<(), (ClassId, ClassId)> {
    for (stronger, weaker) in IMPLICATIONS {
        if report.is_in(stronger) && !report.is_in(weaker) {
            return Err((stronger, weaker));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::class_report;
    use crate::oracles::{
        EventuallyPerfectOracle, EventuallyStrongOracle, MaraboutOracle, Oracle, PerfectOracle,
        RankedOracle, StrongOracle,
    };
    use crate::pattern::FailurePattern;
    use crate::properties::CheckParams;
    use crate::time::Time;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Every oracle's histories respect the containment lattice.
    #[test]
    fn all_oracles_respect_lattice() {
        let horizon = Time::new(500);
        let params = CheckParams::with_margin(horizon, 50);
        let mut rng = StdRng::seed_from_u64(17);
        let perfect = PerfectOracle::new(5, 3);
        let evp = EventuallyPerfectOracle::new(Time::new(80), 5, 3);
        let evs = EventuallyStrongOracle::new(4);
        let ranked = RankedOracle::new(5, 3);
        let strong = StrongOracle::new(4, Time::new(60));
        let marabout = MaraboutOracle::new();
        for seed in 0..15 {
            let f = FailurePattern::random(6, 5, Time::new(300), &mut rng);
            for report in [
                class_report(&f, &perfect.generate(&f, horizon, seed), &params),
                class_report(&f, &evp.generate(&f, horizon, seed), &params),
                class_report(&f, &evs.generate(&f, horizon, seed), &params),
                class_report(&f, &ranked.generate(&f, horizon, seed), &params),
                class_report(&f, &strong.generate(&f, horizon, seed), &params),
                class_report(&f, &marabout.generate(&f, horizon, seed), &params),
            ] {
                assert_eq!(respects_lattice(&report), Ok(()), "pattern {f:?}");
            }
        }
    }

    /// Strictness witnesses: each weaker class is *strictly* weaker —
    /// some oracle produces a history inside the weaker class but outside
    /// the stronger one.
    #[test]
    fn lattice_edges_are_strict() {
        let horizon = Time::new(500);
        let params = CheckParams::with_margin(horizon, 50);
        // P ⊋ S: Marabout history with a late crash is S but not P.
        let f = FailurePattern::new(4).with_crash(crate::ProcessId::new(1), Time::new(100));
        let m = MaraboutOracle::new().generate(&f, horizon, 0);
        let report = class_report(&f, &m, &params);
        assert!(report.is_in(ClassId::Strong) && !report.is_in(ClassId::Perfect));
        // P ⊋ P<: ranked history where the top process crashes.
        let f2 = FailurePattern::new(4).with_crash(crate::ProcessId::new(3), Time::new(100));
        let r = RankedOracle::new(4, 0).generate(&f2, horizon, 0);
        let report2 = class_report(&f2, &r, &params);
        assert!(report2.is_in(ClassId::PartiallyPerfect) && !report2.is_in(ClassId::Perfect));
        // ◇P ⊋ ◇S: eventually-strong history with ≥2 correct processes.
        let f3 = FailurePattern::new(4).with_crash(crate::ProcessId::new(0), Time::new(50));
        let e = EventuallyStrongOracle::new(3).generate(&f3, horizon, 0);
        let report3 = class_report(&f3, &e, &params);
        assert!(
            report3.is_in(ClassId::EventuallyStrong) && !report3.is_in(ClassId::EventuallyPerfect)
        );
    }
}
