//! The Chandra–Toueg failure detector classes used in the paper.
//!
//! A class is a (completeness, accuracy) pair. The paper works with:
//!
//! | Class | Completeness | Accuracy | Paper role |
//! |-------|--------------|----------|------------|
//! | `P`  (Perfect)            | strong | strong | the collapse target (§4, §5) |
//! | `S`  (Strong)             | strong | weak   | solves consensus for any *f* (§1.2); collapses into `P` among realistic detectors (§6.3) |
//! | `◇P` (Eventually Perfect) | strong | eventual strong | realistic, intersects `R` (§3) |
//! | `◇S` (Eventually Strong)  | strong | eventual weak   | weakest for consensus only with a correct majority (§1.2) |
//! | `P<` (Partially Perfect)  | partial | strong | separates uniform from correct-restricted consensus (§6.2) |
//!
//! [`class_report`] evaluates every property of a history at once;
//! [`check_class`] tests membership in one class and returns a violation
//! witness on failure.

use crate::pattern::FailurePattern;
use crate::process::ProcessSet;
use crate::properties::{
    eventual_strong_accuracy, eventual_weak_accuracy, partial_completeness, strong_accuracy,
    strong_completeness, weak_accuracy, weak_completeness, CheckParams, PropertyResult,
};
use crate::History;
use core::fmt;
use serde::{Deserialize, Serialize};

/// Identifier of a failure detector class.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClassId {
    /// `P`: strong completeness + strong accuracy.
    Perfect,
    /// `S`: strong completeness + weak accuracy.
    Strong,
    /// `◇P`: strong completeness + eventual strong accuracy.
    EventuallyPerfect,
    /// `◇S`: strong completeness + eventual weak accuracy.
    EventuallyStrong,
    /// `P<` (§6.2): partial completeness + strong accuracy.
    PartiallyPerfect,
}

impl ClassId {
    /// All classes, strongest first.
    pub const ALL: [ClassId; 5] = [
        ClassId::Perfect,
        ClassId::Strong,
        ClassId::EventuallyPerfect,
        ClassId::EventuallyStrong,
        ClassId::PartiallyPerfect,
    ];

    /// The conventional symbol for the class.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            ClassId::Perfect => "P",
            ClassId::Strong => "S",
            ClassId::EventuallyPerfect => "◇P",
            ClassId::EventuallyStrong => "◇S",
            ClassId::PartiallyPerfect => "P<",
        }
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Per-property verdicts for one `(pattern, history)` pair.
///
/// # Examples
///
/// ```
/// use rfd_core::{class_report, CheckParams, ClassId, FailurePattern, History,
///                ProcessSet, Time};
///
/// let pattern = FailurePattern::new(3);
/// let history = History::new(3, ProcessSet::empty());
/// let report = class_report(&pattern, &history, &CheckParams::new(Time::new(100)));
/// // With no crashes and no suspicions, the history is vacuously perfect.
/// assert!(report.is_in(ClassId::Perfect));
/// ```
#[derive(Clone, Debug)]
pub struct ClassReport {
    /// Strong completeness verdict.
    pub strong_completeness: PropertyResult,
    /// Weak completeness verdict.
    pub weak_completeness: PropertyResult,
    /// Partial (`P<`) completeness verdict.
    pub partial_completeness: PropertyResult,
    /// Strong accuracy verdict.
    pub strong_accuracy: PropertyResult,
    /// Weak accuracy verdict.
    pub weak_accuracy: PropertyResult,
    /// Eventual strong accuracy verdict.
    pub eventual_strong_accuracy: PropertyResult,
    /// Eventual weak accuracy verdict.
    pub eventual_weak_accuracy: PropertyResult,
}

impl ClassReport {
    /// Tests membership in `class` according to this report.
    #[must_use]
    pub fn is_in(&self, class: ClassId) -> bool {
        let (c, a) = self.class_parts(class);
        c.is_ok() && a.is_ok()
    }

    /// The (completeness, accuracy) verdicts that define `class`.
    pub fn class_parts(&self, class: ClassId) -> (&PropertyResult, &PropertyResult) {
        match class {
            ClassId::Perfect => (&self.strong_completeness, &self.strong_accuracy),
            ClassId::Strong => (&self.strong_completeness, &self.weak_accuracy),
            ClassId::EventuallyPerfect => {
                (&self.strong_completeness, &self.eventual_strong_accuracy)
            }
            ClassId::EventuallyStrong => (&self.strong_completeness, &self.eventual_weak_accuracy),
            ClassId::PartiallyPerfect => (&self.partial_completeness, &self.strong_accuracy),
        }
    }

    /// The strongest class (in [`ClassId::ALL`] order) the history belongs
    /// to, if any.
    #[must_use]
    pub fn strongest(&self) -> Option<ClassId> {
        ClassId::ALL.into_iter().find(|c| self.is_in(*c))
    }
}

/// Evaluates every property of `history` against `pattern`.
#[must_use]
pub fn class_report(
    pattern: &FailurePattern,
    history: &History<ProcessSet>,
    params: &CheckParams,
) -> ClassReport {
    ClassReport {
        strong_completeness: strong_completeness(pattern, history, params),
        weak_completeness: weak_completeness(pattern, history, params),
        partial_completeness: partial_completeness(pattern, history, params),
        strong_accuracy: strong_accuracy(pattern, history, params),
        weak_accuracy: weak_accuracy(pattern, history, params),
        eventual_strong_accuracy: eventual_strong_accuracy(pattern, history, params),
        eventual_weak_accuracy: eventual_weak_accuracy(pattern, history, params),
    }
}

/// Tests whether `history` belongs to `class` for `pattern`, returning the
/// first violated property on failure.
pub fn check_class(
    class: ClassId,
    pattern: &FailurePattern,
    history: &History<ProcessSet>,
    params: &CheckParams,
) -> PropertyResult {
    let report = class_report(pattern, history, params);
    let (c, a) = report.class_parts(class);
    c.clone()?;
    a.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::ProcessId;
    use crate::time::Time;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn perfect_implies_all_weaker_classes() {
        let pattern = FailurePattern::new(3).with_crash(p(0), Time::new(10));
        let mut h = History::new(3, ProcessSet::empty());
        h.set_from(p(1), Time::new(12), ProcessSet::singleton(p(0)));
        h.set_from(p(2), Time::new(12), ProcessSet::singleton(p(0)));
        let report = class_report(&pattern, &h, &CheckParams::new(Time::new(100)));
        for class in ClassId::ALL {
            assert!(report.is_in(class), "perfect history should be in {class}");
        }
        assert_eq!(report.strongest(), Some(ClassId::Perfect));
    }

    #[test]
    fn early_mistake_is_eventually_perfect_but_not_perfect() {
        let pattern = FailurePattern::new(3).with_crash(p(0), Time::new(50));
        let mut h = History::new(3, ProcessSet::empty());
        // p1 falsely suspects correct p2 early, then retracts.
        h.set_from(p(1), Time::new(5), ProcessSet::singleton(p(2)));
        h.set_from(p(1), Time::new(8), ProcessSet::empty());
        // Both correct processes suspect the crashed p0 permanently.
        h.set_from(p(1), Time::new(55), ProcessSet::singleton(p(0)));
        h.set_from(p(2), Time::new(55), ProcessSet::singleton(p(0)));
        let report = class_report(&pattern, &h, &CheckParams::new(Time::new(200)));
        assert!(!report.is_in(ClassId::Perfect));
        assert!(report.is_in(ClassId::EventuallyPerfect));
        assert!(report.is_in(ClassId::EventuallyStrong));
        // p2 was suspected once, p0 is faulty: weak accuracy needs an
        // immune *correct* process; p1 qualifies (never suspected).
        assert!(report.is_in(ClassId::Strong));
        assert_eq!(report.strongest(), Some(ClassId::Strong));
    }

    #[test]
    fn check_class_returns_accuracy_violation() {
        let pattern = FailurePattern::new(2);
        let mut h = History::new(2, ProcessSet::empty());
        h.set_from(p(0), Time::new(1), ProcessSet::singleton(p(1)));
        let params = CheckParams::new(Time::new(10));
        assert!(check_class(ClassId::Perfect, &pattern, &h, &params).is_err());
        // The permanent suspicion of correct p1 also breaks ◇P...
        assert!(check_class(ClassId::EventuallyPerfect, &pattern, &h, &params).is_err());
        // ...but not ◇S: p0 itself is never suspected, so an immune
        // correct process exists.
        assert!(check_class(ClassId::EventuallyStrong, &pattern, &h, &params).is_ok());
    }

    #[test]
    fn class_symbols() {
        assert_eq!(ClassId::Perfect.to_string(), "P");
        assert_eq!(ClassId::EventuallyStrong.to_string(), "◇S");
        assert_eq!(ClassId::PartiallyPerfect.to_string(), "P<");
    }
}
