//! The realism property of §3.1, made executable.
//!
//! A failure detector `D` is **realistic** (`D ∈ R`) if it cannot guess
//! the future: for any two failure patterns `F`, `F′` that agree up to
//! time `t`, and any history `H ∈ D(F)`, there is a history
//! `H′ ∈ D(F′)` that agrees with `H` (at every process) up to `t`.
//!
//! With the generator view of [`crate::oracles::Oracle`] (`D(F)` = image
//! of `generate(F, ·, seed)` over seeds), the universal quantifier over
//! `H` becomes a sweep over generation seeds and the existential over `H′`
//! becomes a search over witness seeds. The check is therefore:
//!
//! * **sound for rejection**: a returned [`RealismViolation`] exhibits a
//!   concrete `(F, F′, t, H)` for which no tried witness seed matches —
//!   for the deterministic clairvoyant oracles in this crate (Marabout,
//!   clairvoyant-Strong) this is a genuine proof, since their `D(F′)` is
//!   tiny (singleton or seed-insensitive prefix behaviour);
//! * **probabilistic for acceptance**: passing the battery does not prove
//!   realism, but every realistic oracle here passes by construction
//!   (their output is a function of the pattern prefix, so the *same*
//!   seed is always a witness — which the checker tries first).

use crate::oracles::Oracle;
use crate::pattern::FailurePattern;
use crate::time::Time;
use core::fmt;
use rand::Rng;

/// Configuration of the realism battery.
#[derive(Clone, Debug)]
pub struct RealismCheck {
    /// Horizon of generated histories.
    pub horizon: Time,
    /// Seeds used to enumerate histories `H ∈ D(F)`.
    pub generation_seeds: Vec<u64>,
    /// Seeds searched for the witness `H′ ∈ D(F′)`.
    pub witness_seeds: Vec<u64>,
}

impl RealismCheck {
    /// A battery with `g` generation seeds and `w` witness seeds.
    #[must_use]
    pub fn new(horizon: Time, g: u64, w: u64) -> Self {
        Self {
            horizon,
            generation_seeds: (0..g).collect(),
            witness_seeds: (0..w).collect(),
        }
    }
}

impl Default for RealismCheck {
    fn default() -> Self {
        Self::new(Time::new(500), 8, 32)
    }
}

/// A witness that an oracle is **not** realistic.
#[derive(Clone, Debug)]
pub struct RealismViolation {
    /// The pattern whose history could not be re-played.
    pub pattern: FailurePattern,
    /// The prefix-sharing pattern with no matching history.
    pub alternative: FailurePattern,
    /// The shared-prefix time `t`.
    pub prefix_time: Time,
    /// The generation seed of the unmatched history.
    pub seed: u64,
}

impl fmt::Display for RealismViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "not realistic: history (seed {}) of {:?} has no matching history of {:?} up to {}",
            self.seed, self.pattern, self.alternative, self.prefix_time
        )
    }
}

/// Result of a realism check.
pub type RealismResult = Result<(), Box<RealismViolation>>;

/// Checks the realism condition on one pattern pair.
///
/// # Panics
///
/// Panics if the patterns do not agree up to `prefix_time` (the condition
/// only constrains prefix-sharing pairs).
pub fn check_pair<O: Oracle>(
    oracle: &O,
    pattern: &FailurePattern,
    alternative: &FailurePattern,
    prefix_time: Time,
    check: &RealismCheck,
) -> RealismResult {
    assert!(
        pattern.agrees_up_to(alternative, prefix_time),
        "realism only constrains patterns agreeing up to the prefix time"
    );
    for &seed in &check.generation_seeds {
        let h = oracle.generate(pattern, check.horizon, seed);
        // Try the generating seed first: for prefix-determined (realistic)
        // oracles it is always a witness.
        let witness_found = core::iter::once(seed)
            .chain(check.witness_seeds.iter().copied())
            .any(|ws| {
                let h_alt = oracle.generate(alternative, check.horizon, ws);
                h_alt.eq_up_to(&h, prefix_time)
            });
        if !witness_found {
            return Err(Box::new(RealismViolation {
                pattern: pattern.clone(),
                alternative: alternative.clone(),
                prefix_time,
                seed,
            }));
        }
    }
    Ok(())
}

/// The canonical §3.2.2 pattern pair: `F₁` = all correct except `p₀`,
/// which crashes at `crash_at`; `F₂` = all correct. They agree up to
/// `crash_at − 1`.
#[must_use]
pub fn marabout_pair(n: usize, crash_at: Time) -> (FailurePattern, FailurePattern, Time) {
    let f1 = FailurePattern::new(n).with_crash(crate::ProcessId::new(0), crash_at);
    let f2 = FailurePattern::new(n);
    (f1, f2, crash_at.prev())
}

/// Runs the realism battery on `count` random prefix-sharing pairs plus
/// the canonical Marabout pair.
///
/// Pairs are built as `(F, prefix(F, t))`: the "everybody still alive at
/// `t` survives" extension — exactly the adversary move used by Lemma 4.1
/// and §6.3.
pub fn check_realism<O: Oracle, R: Rng + ?Sized>(
    oracle: &O,
    n: usize,
    count: usize,
    check: &RealismCheck,
    rng: &mut R,
) -> RealismResult {
    let (f1, f2, t) = marabout_pair(n, Time::new(check.horizon.ticks() / 4));
    check_pair(oracle, &f1, &f2, t, check)?;
    check_pair(oracle, &f2, &f1, t, check)?;
    for _ in 0..count {
        let f = FailurePattern::random(n, n - 1, Time::new(check.horizon.ticks() / 2), rng);
        let t = Time::new(rng.gen_range(0..check.horizon.ticks() / 2));
        let g = f.prefix(t);
        check_pair(oracle, &f, &g, t, check)?;
        check_pair(oracle, &g, &f, t, check)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracles::{
        EventuallyPerfectOracle, EventuallyStrongOracle, MaraboutOracle, PerfectOracle,
        RankedOracle, ScribeOracle, StrongOracle,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn battery() -> RealismCheck {
        RealismCheck::new(Time::new(400), 4, 16)
    }

    #[test]
    fn perfect_oracle_is_realistic() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(check_realism(&PerfectOracle::new(5, 3), 5, 20, &battery(), &mut rng).is_ok());
    }

    #[test]
    fn eventually_perfect_oracle_is_realistic() {
        let mut rng = StdRng::seed_from_u64(2);
        let oracle = EventuallyPerfectOracle::new(Time::new(80), 5, 3).with_mistakes(3, 10);
        assert!(check_realism(&oracle, 5, 20, &battery(), &mut rng).is_ok());
    }

    #[test]
    fn eventually_strong_oracle_is_realistic() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(
            check_realism(&EventuallyStrongOracle::new(4), 5, 20, &battery(), &mut rng).is_ok()
        );
    }

    #[test]
    fn ranked_oracle_is_realistic() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(check_realism(&RankedOracle::new(5, 2), 5, 20, &battery(), &mut rng).is_ok());
    }

    #[test]
    fn scribe_is_realistic() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(check_realism(&ScribeOracle::new(), 5, 20, &battery(), &mut rng).is_ok());
    }

    #[test]
    fn marabout_fails_realism_on_the_papers_pair() {
        // §3.2.2: M(F₂) outputs ∅ forever; M(F₁) outputs {p₀} forever.
        // They cannot agree on [0, 9] although F₁, F₂ agree there.
        let (f1, f2, t) = marabout_pair(4, Time::new(10));
        let violation = check_pair(&MaraboutOracle::new(), &f1, &f2, t, &battery())
            .expect_err("marabout must fail realism");
        assert_eq!(violation.prefix_time, Time::new(9));
    }

    #[test]
    fn marabout_fails_full_battery() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(check_realism(&MaraboutOracle::new(), 4, 5, &battery(), &mut rng).is_err());
    }

    #[test]
    fn clairvoyant_strong_fails_realism() {
        // §6.3: a Strong-but-not-Perfect detector cannot be realistic.
        // The oracle picks its immune process by peeking at correct(F):
        // patterns that agree up to t but diverge later make it output
        // different suspicion prefixes.
        let mut rng = StdRng::seed_from_u64(7);
        let oracle = StrongOracle::new(4, Time::new(60));
        assert!(check_realism(&oracle, 5, 40, &battery(), &mut rng).is_err());
    }

    #[test]
    #[should_panic(expected = "agreeing up to")]
    fn check_pair_rejects_non_agreeing_patterns() {
        let f1 = FailurePattern::new(3).with_crash(crate::ProcessId::new(0), Time::new(1));
        let f2 = FailurePattern::new(3);
        let _ = check_pair(
            &PerfectOracle::default(),
            &f1,
            &f2,
            Time::new(5),
            &battery(),
        );
    }
}
