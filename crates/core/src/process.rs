//! Process identities and finite process sets.
//!
//! The paper's system model (§2.1) fixes a finite set of processes
//! Ω = {p₁, …, pₙ}. We represent identities as [`ProcessId`] (zero-indexed,
//! so the paper's pᵢ is `ProcessId::new(i - 1)`) and subsets of Ω as
//! [`ProcessSet`], a 128-bit bitset. All failure-detector ranges of the
//! form 2^Ω (suspect lists) use [`ProcessSet`].

use core::fmt;
use serde::{Deserialize, Serialize};

/// Maximum number of processes supported by [`ProcessSet`].
pub const MAX_PROCESSES: usize = 128;

/// Identity of a process in Ω.
///
/// Identifiers are dense indices `0..n`. The paper's ordering of process
/// identities (used e.g. by the `P<` class of §6.2, where only higher-index
/// processes must detect a crash) is the natural order on the index.
///
/// # Examples
///
/// ```
/// use rfd_core::ProcessId;
///
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProcessId(u16);

impl ProcessId {
    /// Creates a process identity from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MAX_PROCESSES`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(
            index < MAX_PROCESSES,
            "process index {index} out of range (max {MAX_PROCESSES})"
        );
        Self(index as u16)
    }

    /// Creates a process identity from an **untrusted** dense index:
    /// `None` when `index` falls outside the `n`-process fleet (or the
    /// global [`MAX_PROCESSES`] cap).
    ///
    /// This is the constructor for wire-facing code: a corrupt or
    /// foreign datagram can claim any sender index, and the panicking
    /// [`ProcessId::new`] is forbidden there by `rfd-lint`'s
    /// wire-safety rule.
    ///
    /// # Examples
    ///
    /// ```
    /// use rfd_core::ProcessId;
    ///
    /// assert_eq!(ProcessId::try_new(3, 4), Some(ProcessId::new(3)));
    /// assert_eq!(ProcessId::try_new(4, 4), None);
    /// assert_eq!(ProcessId::try_new(9999, 4), None);
    /// ```
    #[must_use]
    pub fn try_new(index: usize, n: usize) -> Option<Self> {
        #[allow(clippy::cast_possible_truncation)]
        (index < n && index < MAX_PROCESSES).then_some(Self(index as u16))
    }

    /// Returns the dense index of this process.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<ProcessId> for usize {
    fn from(pid: ProcessId) -> Self {
        pid.index()
    }
}

/// A subset of the process universe Ω, represented as a 128-bit bitset.
///
/// `ProcessSet` is the range of all 2^Ω failure detectors of the paper
/// (§2.2): the value output by a detector module is the set of processes
/// it currently *suspects*. It is `Copy` and all operations are O(1).
///
/// # Examples
///
/// ```
/// use rfd_core::{ProcessId, ProcessSet};
///
/// let mut s = ProcessSet::empty();
/// s.insert(ProcessId::new(0));
/// s.insert(ProcessId::new(2));
/// assert!(s.contains(ProcessId::new(2)));
/// assert_eq!(s.len(), 2);
/// assert!(s.is_subset(&ProcessSet::full(4)));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ProcessSet(u128);

impl ProcessSet {
    /// The empty set ∅.
    #[must_use]
    pub const fn empty() -> Self {
        Self(0)
    }

    /// The full universe {p₀, …, pₙ₋₁} for an `n`-process system.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_PROCESSES`.
    #[must_use]
    pub fn full(n: usize) -> Self {
        assert!(n <= MAX_PROCESSES, "process count {n} out of range");
        if n == MAX_PROCESSES {
            Self(u128::MAX)
        } else {
            Self((1u128 << n) - 1)
        }
    }

    /// The singleton set {pid}.
    #[must_use]
    pub fn singleton(pid: ProcessId) -> Self {
        Self(1u128 << pid.index())
    }

    /// Inserts a process; returns `true` if it was newly inserted.
    pub fn insert(&mut self, pid: ProcessId) -> bool {
        let bit = 1u128 << pid.index();
        let fresh = self.0 & bit == 0;
        self.0 |= bit;
        fresh
    }

    /// Removes a process; returns `true` if it was present.
    pub fn remove(&mut self, pid: ProcessId) -> bool {
        let bit = 1u128 << pid.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Tests membership.
    #[must_use]
    pub fn contains(self, pid: ProcessId) -> bool {
        self.0 & (1u128 << pid.index()) != 0
    }

    /// Number of processes in the set.
    #[must_use]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Tests whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: Self) -> Self {
        Self(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: Self) -> Self {
        Self(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub fn difference(self, other: Self) -> Self {
        Self(self.0 & !other.0)
    }

    /// Complement within an `n`-process universe.
    #[must_use]
    pub fn complement_within(self, n: usize) -> Self {
        Self::full(n).difference(self)
    }

    /// Tests `self ⊆ other`.
    #[must_use]
    pub fn is_subset(self, other: &Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// Tests `self ∩ other = ∅`.
    #[must_use]
    pub fn is_disjoint(self, other: &Self) -> bool {
        self.0 & other.0 == 0
    }

    /// The lowest-index member, if any.
    #[must_use]
    pub fn min(self) -> Option<ProcessId> {
        if self.0 == 0 {
            None
        } else {
            Some(ProcessId::new(self.0.trailing_zeros() as usize))
        }
    }

    /// Iterates over members in increasing index order.
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }
}

/// Iterator over the members of a [`ProcessSet`], produced by
/// [`ProcessSet::iter`].
#[derive(Clone, Debug)]
pub struct Iter(u128);

impl Iterator for Iter {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        if self.0 == 0 {
            None
        } else {
            let ix = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(ProcessId::new(ix))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl IntoIterator for ProcessSet {
    type Item = ProcessId;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = Self::empty();
        for pid in iter {
            s.insert(pid);
        }
        s
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for pid in iter {
            self.insert(pid);
        }
    }
}

impl core::ops::BitOr for ProcessSet {
    type Output = Self;
    fn bitor(self, rhs: Self) -> Self {
        self.union(rhs)
    }
}

impl core::ops::BitAnd for ProcessSet {
    type Output = Self;
    fn bitand(self, rhs: Self) -> Self {
        self.intersection(rhs)
    }
}

impl core::ops::Sub for ProcessSet {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        self.difference(rhs)
    }
}

impl core::ops::BitOrAssign for ProcessSet {
    fn bitor_assign(&mut self, rhs: Self) {
        self.0 |= rhs.0;
    }
}

impl fmt::Debug for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, pid) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{pid}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_contains_only_member() {
        let s = ProcessSet::singleton(ProcessId::new(5));
        assert!(s.contains(ProcessId::new(5)));
        assert!(!s.contains(ProcessId::new(4)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn full_has_n_members() {
        assert_eq!(ProcessSet::full(7).len(), 7);
        assert_eq!(ProcessSet::full(0).len(), 0);
        assert_eq!(ProcessSet::full(MAX_PROCESSES).len(), MAX_PROCESSES);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = ProcessSet::empty();
        assert!(s.insert(ProcessId::new(3)));
        assert!(!s.insert(ProcessId::new(3)));
        assert!(s.remove(ProcessId::new(3)));
        assert!(!s.remove(ProcessId::new(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra_identities() {
        let a: ProcessSet = [0, 1, 2].iter().map(|&i| ProcessId::new(i)).collect();
        let b: ProcessSet = [2, 3].iter().map(|&i| ProcessId::new(i)).collect();
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersection(b), ProcessSet::singleton(ProcessId::new(2)));
        assert_eq!(a.difference(b).len(), 2);
        assert!(a.intersection(b).is_subset(&a));
        assert!(a.intersection(b).is_subset(&b));
    }

    #[test]
    fn complement_partitions_universe() {
        let a: ProcessSet = [1, 3].iter().map(|&i| ProcessId::new(i)).collect();
        let c = a.complement_within(5);
        assert!(a.is_disjoint(&c));
        assert_eq!(a.union(c), ProcessSet::full(5));
    }

    #[test]
    fn iteration_is_sorted() {
        let s: ProcessSet = [4, 1, 7].iter().map(|&i| ProcessId::new(i)).collect();
        let ids: Vec<usize> = s.iter().map(ProcessId::index).collect();
        assert_eq!(ids, vec![1, 4, 7]);
    }

    #[test]
    fn min_member() {
        assert_eq!(ProcessSet::empty().min(), None);
        let s: ProcessSet = [9, 2].iter().map(|&i| ProcessId::new(i)).collect();
        assert_eq!(s.min(), Some(ProcessId::new(2)));
    }

    #[test]
    fn display_formats() {
        let s: ProcessSet = [0, 2].iter().map(|&i| ProcessId::new(i)).collect();
        assert_eq!(s.to_string(), "{p0,p2}");
        assert_eq!(ProcessSet::empty().to_string(), "{}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_index_panics() {
        let _ = ProcessId::new(MAX_PROCESSES);
    }
}
