//! Property-based tests on the simulation engine: fairness, determinism,
//! causal monotonicity, crash semantics.

use proptest::prelude::*;
use rfd_core::{FailurePattern, History, ProcessId, ProcessSet, Time};
use rfd_sim::{run, Automaton, Envelope, SimConfig, StepContext};

/// Every process broadcasts one token and outputs each received token.
struct Gossip {
    started: bool,
}

impl Automaton for Gossip {
    type Msg = usize;
    type Output = usize;

    fn on_step(&mut self, input: Option<&Envelope<usize>>, ctx: &mut StepContext<usize, usize>) {
        if !self.started {
            self.started = true;
            ctx.broadcast_others(ctx.me().index());
        }
        if let Some(env) = input {
            ctx.output(env.payload);
        }
    }
}

/// Forwards every received token once, stamping hops; outputs it too.
struct Relay {
    started: bool,
    forwarded: std::collections::BTreeSet<usize>,
}

impl Automaton for Relay {
    type Msg = usize;
    type Output = usize;

    fn on_step(&mut self, input: Option<&Envelope<usize>>, ctx: &mut StepContext<usize, usize>) {
        if !self.started {
            self.started = true;
            ctx.broadcast_others(ctx.me().index());
        }
        if let Some(env) = input {
            ctx.output(env.payload);
            if self.forwarded.insert(env.payload) {
                ctx.broadcast_others(env.payload);
            }
        }
    }
}

fn arb_pattern(n: usize, horizon: u64) -> impl Strategy<Value = FailurePattern> {
    prop::collection::vec((0..n, 0..horizon), 0..n).prop_map(move |crashes| {
        let mut f = FailurePattern::new(n);
        for (ix, t) in crashes {
            f.set_crash(ProcessId::new(ix), Time::new(t));
        }
        f
    })
}

fn silent(n: usize) -> History<ProcessSet> {
    History::new(n, ProcessSet::empty())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Channel reliability (run condition 5): every message sent to a
    /// correct process is delivered within the horizon.
    #[test]
    fn all_messages_to_correct_processes_delivered(
        seed in 0u64..10_000, f in arb_pattern(5, 50)
    ) {
        let n = 5;
        let automata = (0..n).map(|_| Gossip { started: false }).collect();
        let result = run(&f, &silent(n), automata, &SimConfig::new(seed, 400));
        // Every correct process must have received a token from every
        // process that managed to take a step before crashing.
        let correct = f.correct();
        for receiver in correct {
            let got: Vec<usize> = result
                .trace
                .outputs_of(receiver)
                .map(|e| e.value)
                .collect();
            for sender in correct {
                if sender != receiver {
                    prop_assert!(
                        got.contains(&sender.index()),
                        "seed={seed} {receiver} missed the token of correct {sender} ({f:?})"
                    );
                }
            }
        }
    }

    /// Process fairness (run condition 4): in a failure-free run every
    /// process takes a step each round.
    #[test]
    fn steps_are_fair_without_crashes(seed in 0u64..10_000) {
        let n = 4;
        let f = FailurePattern::new(n);
        let automata = (0..n).map(|_| Gossip { started: false }).collect();
        let rounds = 50;
        let result = run(&f, &silent(n), automata, &SimConfig::new(seed, rounds));
        prop_assert_eq!(result.trace.steps, rounds * n as u64);
    }

    /// Determinism: identical configuration ⇒ identical trace.
    #[test]
    fn runs_are_deterministic(seed in 0u64..10_000, f in arb_pattern(4, 40)) {
        let n = 4;
        let mk = || (0..n).map(|_| Relay { started: false, forwarded: Default::default() }).collect::<Vec<_>>();
        let config = SimConfig::new(seed, 120);
        let a = run(&f, &silent(n), mk(), &config);
        let b = run(&f, &silent(n), mk(), &config);
        prop_assert_eq!(a.trace.steps, b.trace.steps);
        prop_assert_eq!(a.trace.messages_sent, b.trace.messages_sent);
        prop_assert_eq!(a.trace.events.len(), b.trace.events.len());
        for (x, y) in a.trace.events.iter().zip(&b.trace.events) {
            prop_assert_eq!(x.process, y.process);
            prop_assert_eq!(x.time, y.time);
            prop_assert_eq!(x.value, y.value);
            prop_assert_eq!(x.causal_past, y.causal_past);
        }
    }

    /// Causal pasts grow monotonically per process and always contain
    /// the process itself.
    #[test]
    fn causal_past_is_monotone(seed in 0u64..10_000, f in arb_pattern(4, 40)) {
        let n = 4;
        let automata = (0..n)
            .map(|_| Relay { started: false, forwarded: Default::default() })
            .collect::<Vec<_>>();
        let result = run(&f, &silent(n), automata, &SimConfig::new(seed, 120));
        for ix in 0..n {
            let pid = ProcessId::new(ix);
            let mut prev = ProcessSet::singleton(pid);
            for ev in result.trace.outputs_of(pid) {
                prop_assert!(ev.causal_past.contains(pid));
                prop_assert!(prev.is_subset(&ev.causal_past));
                prev = ev.causal_past;
            }
        }
    }

    /// Crash semantics: a process crashed at time 0 produces nothing,
    /// and nobody ever receives from it.
    #[test]
    fn crashed_at_zero_is_silent(seed in 0u64..10_000) {
        let n = 4;
        let f = FailurePattern::new(n).with_crash(ProcessId::new(0), Time::ZERO);
        let automata = (0..n).map(|_| Gossip { started: false }).collect::<Vec<_>>();
        let result = run(&f, &silent(n), automata, &SimConfig::new(seed, 200));
        prop_assert_eq!(result.trace.outputs_of(ProcessId::new(0)).count(), 0);
        for ix in 1..n {
            for ev in result.trace.outputs_of(ProcessId::new(ix)) {
                prop_assert!(ev.value != 0, "received the dead process's token");
            }
        }
    }

    /// Messages sent before a crash may still be delivered afterwards
    /// (crash-stop, not crash-vanish): totals stay consistent.
    #[test]
    fn message_accounting_is_consistent(seed in 0u64..10_000, f in arb_pattern(5, 60)) {
        let n = 5;
        let automata = (0..n).map(|_| Gossip { started: false }).collect::<Vec<_>>();
        let result = run(&f, &silent(n), automata, &SimConfig::new(seed, 300));
        prop_assert!(result.trace.messages_delivered <= result.trace.messages_sent);
    }
}
