//! Adversary semantics: HoldTo, Isolate, and their interaction with
//! fairness (delivery is postponed, never suppressed, for correct
//! destinations).

use rfd_core::{FailurePattern, History, ProcessId, ProcessSet, Time};
use rfd_sim::{run, Adversary, Automaton, Envelope, SimConfig, StepContext};

struct Gossip {
    started: bool,
}

impl Automaton for Gossip {
    type Msg = usize;
    type Output = usize;

    fn on_step(&mut self, input: Option<&Envelope<usize>>, ctx: &mut StepContext<usize, usize>) {
        if !self.started {
            self.started = true;
            ctx.broadcast_others(ctx.me().index());
        }
        if let Some(env) = input {
            ctx.output(env.payload);
        }
    }
}

fn fleet(n: usize) -> Vec<Gossip> {
    (0..n).map(|_| Gossip { started: false }).collect()
}

fn silent(n: usize) -> History<ProcessSet> {
    History::new(n, ProcessSet::empty())
}

#[test]
fn hold_to_starves_only_the_target() {
    let n = 3;
    let pattern = FailurePattern::new(n);
    let release = Time::new(200);
    let config =
        SimConfig::new(3, 400).with_adversary(Adversary::HoldTo(ProcessId::new(0), release));
    let result = run(&pattern, &silent(n), fleet(n), &config);
    // p0 receives everything only after the release time…
    for ev in result.trace.outputs_of(ProcessId::new(0)) {
        assert!(ev.time >= release, "p0 received early at {}", ev.time);
    }
    // …while p1 and p2 communicate promptly.
    let p1_first = result
        .trace
        .outputs_of(ProcessId::new(1))
        .next()
        .expect("p1 receives");
    assert!(p1_first.time < release);
    // Fairness: p0 still eventually receives both tokens.
    assert_eq!(result.trace.outputs_of(ProcessId::new(0)).count(), 2);
}

#[test]
fn isolate_cuts_both_directions_until_release() {
    let n = 3;
    let pattern = FailurePattern::new(n);
    let release = Time::new(150);
    let config =
        SimConfig::new(5, 400).with_adversary(Adversary::Isolate(ProcessId::new(2), release));
    let result = run(&pattern, &silent(n), fleet(n), &config);
    // Nothing crosses the cut before the release.
    for ev in &result.trace.events {
        let crosses = ev.process == ProcessId::new(2) || ev.value == 2;
        if crosses {
            assert!(
                ev.time >= release,
                "cut crossed early: {} got {} at {}",
                ev.process,
                ev.value,
                ev.time
            );
        }
    }
    // After the release everyone has everything (partition healed).
    for ix in 0..n {
        assert_eq!(
            result.trace.outputs_of(ProcessId::new(ix)).count(),
            2,
            "p{ix} must receive both tokens eventually"
        );
    }
}

#[test]
fn adversary_does_not_leak_messages_to_crashed_targets() {
    // A message held for a process that crashes before the release is
    // simply never delivered — consistent with crash-stop semantics.
    let n = 2;
    let pattern = FailurePattern::new(n).with_crash(ProcessId::new(1), Time::new(50));
    let config =
        SimConfig::new(7, 300).with_adversary(Adversary::HoldTo(ProcessId::new(1), Time::new(200)));
    let result = run(&pattern, &silent(n), fleet(n), &config);
    assert_eq!(result.trace.outputs_of(ProcessId::new(1)).count(), 0);
}
