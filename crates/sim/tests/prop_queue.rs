//! Property tests pinning the heap-backed [`EventQueue`] to the engine's
//! former linear-scan delivery rule: on any inbox and any probe time,
//! heap-based delivery removes exactly the `(due, id)`-minimal due
//! envelope the old scan would have picked — or nothing when the scan
//! would have picked nothing.

use proptest::prelude::*;
use rfd_core::{ProcessId, ProcessSet, Time};
use rfd_sim::{take_due_linear_reference as take_due_linear, Envelope, EventQueue};

fn envelope(id: u64) -> Envelope<u32> {
    Envelope {
        id,
        from: ProcessId::new(0),
        to: ProcessId::new(1),
        payload: id as u32,
        sent_at: Time::ZERO,
        causal_past: ProcessSet::singleton(ProcessId::new(0)),
    }
}

/// Random inboxes: per-message due times (ids are assigned uniquely in
/// insertion order, as the engine does with its monotone message ids).
fn arb_inbox() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..40, 0..48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Single-probe equivalence at an arbitrary probe time.
    #[test]
    fn heap_matches_linear_scan_on_one_pop(dues in arb_inbox(), now in 0u64..50) {
        let mut queue = EventQueue::new();
        let mut inbox: Vec<(Envelope<u32>, Time)> = Vec::new();
        for (id, due) in dues.iter().enumerate() {
            queue.push(envelope(id as u64), Time::new(*due));
            inbox.push((envelope(id as u64), Time::new(*due)));
        }
        let now = Time::new(now);
        let from_heap = queue.pop_due(now);
        let from_scan = take_due_linear(&mut inbox, now);
        prop_assert_eq!(from_heap.as_ref().map(|e| e.id), from_scan.as_ref().map(|e| e.id));
    }

    /// Full-drain equivalence: popping at an advancing clock empties both
    /// structures through the identical delivery sequence.
    #[test]
    fn heap_matches_linear_scan_over_a_full_drain(dues in arb_inbox()) {
        let mut queue = EventQueue::new();
        let mut inbox: Vec<(Envelope<u32>, Time)> = Vec::new();
        for (id, due) in dues.iter().enumerate() {
            queue.push(envelope(id as u64), Time::new(*due));
            inbox.push((envelope(id as u64), Time::new(*due)));
        }
        let mut heap_order = Vec::new();
        let mut scan_order = Vec::new();
        // One receive slot per tick, exactly like an engine step; enough
        // ticks that every message (dues < 40) can be received.
        for tick in 0u64..(40 + dues.len() as u64) {
            let now = Time::new(tick);
            if let Some(e) = queue.pop_due(now) {
                heap_order.push((tick, e.id));
            }
            if let Some(e) = take_due_linear(&mut inbox, now) {
                scan_order.push((tick, e.id));
            }
        }
        prop_assert_eq!(&heap_order, &scan_order);
        prop_assert_eq!(heap_order.len(), dues.len(), "every message delivered");
        prop_assert!(queue.is_empty() && inbox.is_empty());
    }

    /// `next_due` is exactly the minimum pending due time.
    #[test]
    fn next_due_is_the_minimum(dues in arb_inbox()) {
        let mut queue = EventQueue::new();
        for (id, due) in dues.iter().enumerate() {
            queue.push(envelope(id as u64), Time::new(*due));
        }
        let expected = dues.iter().min().map(|d| Time::new(*d));
        prop_assert_eq!(queue.next_due(), expected);
    }
}
