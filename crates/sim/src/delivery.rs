//! Message delivery models and schedule adversaries.
//!
//! The paper's runs (§2.4) require that every message sent to a correct
//! process is eventually received (reliable channels) and every correct
//! process takes infinitely many steps. [`DeliveryModel`] controls *when*
//! a message becomes deliverable; the engine's round-robin scheduler
//! provides process fairness. An [`Adversary`] can stretch (but, for
//! correct destinations, never suppress) delivery — the tool used to
//! exhibit the paper's indistinguishability runs (Lemma 4.1, §6.2).

use rfd_core::{ProcessId, Time};

/// Base random-delay model: each message is deliverable after a delay
/// drawn uniformly from `[min_delay, max_delay]` ticks.
#[derive(Clone, Debug)]
pub struct DeliveryModel {
    /// Minimum delivery delay in ticks.
    pub min_delay: u64,
    /// Maximum delivery delay in ticks (inclusive).
    pub max_delay: u64,
}

impl DeliveryModel {
    /// Creates a uniform-delay model.
    ///
    /// # Panics
    ///
    /// Panics if `min_delay > max_delay`.
    #[must_use]
    pub fn uniform(min_delay: u64, max_delay: u64) -> Self {
        assert!(
            min_delay <= max_delay,
            "min_delay must not exceed max_delay"
        );
        Self {
            min_delay,
            max_delay,
        }
    }
}

impl Default for DeliveryModel {
    fn default() -> Self {
        Self::uniform(1, 8)
    }
}

/// A schedule adversary: an extra, deterministic delivery constraint.
///
/// The adversary returns the *earliest allowed delivery time* for a
/// message, or `None` for "no extra constraint". The engine takes the max
/// with the base model's delay, so an adversary can only postpone.
/// Postponement never exceeds the adversary's own bounds, preserving the
/// run conditions for correct processes (fairness is restored after the
/// hold time).
#[derive(Clone, Debug, Default)]
pub enum Adversary {
    /// No adversary: only the base delay model applies.
    #[default]
    None,
    /// Hold every message **from** the process until the given time
    /// (used for Lemma 4.1's run `R₁`, where a victim's messages are
    /// delayed past the decision, and for the §6.2 non-uniformity
    /// witness).
    HoldFrom(ProcessId, Time),
    /// Hold every message **to** the process until the given time
    /// (the "pⱼ receives nothing before `t`" side of run `R₁`).
    HoldTo(ProcessId, Time),
    /// Hold all messages crossing the cut {isolated} ↔ rest, both ways,
    /// until the given time (a temporary partition).
    Isolate(ProcessId, Time),
}

impl Adversary {
    /// The adversary's earliest-delivery constraint for a message
    /// `from → to`, or `None` if unconstrained.
    #[must_use]
    pub fn earliest(&self, from: ProcessId, to: ProcessId) -> Option<Time> {
        match *self {
            Adversary::None => None,
            Adversary::HoldFrom(p, t) if from == p => Some(t),
            Adversary::HoldTo(p, t) if to == p => Some(t),
            Adversary::Isolate(p, t) if from == p || to == p => Some(t),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_bounded() {
        let m = DeliveryModel::default();
        assert!(m.min_delay <= m.max_delay);
    }

    #[test]
    fn hold_from_only_affects_the_sender() {
        let a = Adversary::HoldFrom(ProcessId::new(1), Time::new(50));
        assert_eq!(
            a.earliest(ProcessId::new(1), ProcessId::new(0)),
            Some(Time::new(50))
        );
        assert_eq!(a.earliest(ProcessId::new(0), ProcessId::new(1)), None);
    }

    #[test]
    fn isolate_cuts_both_directions() {
        let a = Adversary::Isolate(ProcessId::new(2), Time::new(9));
        assert!(a.earliest(ProcessId::new(2), ProcessId::new(0)).is_some());
        assert!(a.earliest(ProcessId::new(0), ProcessId::new(2)).is_some());
        assert!(a.earliest(ProcessId::new(0), ProcessId::new(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "min_delay")]
    fn inverted_bounds_panic() {
        let _ = DeliveryModel::uniform(5, 1);
    }
}
