//! The streaming run driver: a long-running, incremental view of an
//! engine execution.
//!
//! The paper's §1.3 point is that practitioners deploy failure detection
//! as a *service*, not as a batch job that is inspected post mortem. The
//! batch entry point [`crate::run`] spins a run to completion and returns
//! the corpse; [`StreamRun`] instead wraps a live [`Scheduler`] and
//! yields typed [`StreamEvent`]s — deliveries, crashes, emulated-detector
//! transitions, output decisions — as rounds execute, without ever
//! re-entering `run`. The caller can stop, inspect the scheduler state,
//! and resume at any event boundary.
//!
//! The stream is *exact*: driving a `StreamRun` to exhaustion executes
//! the same schedule as the batch run under the same seed, so the final
//! [`RunResult`] (via [`StreamRun::finish`]) is identical, and every
//! delivery/output in the trace appears as exactly one event.
//!
//! ```
//! use rfd_sim::{Automaton, Envelope, SimConfig, StepContext, StreamEvent, StreamRun};
//! use rfd_core::{FailurePattern, History, ProcessSet};
//!
//! struct Ping { sent: bool }
//! impl Automaton for Ping {
//!     type Msg = ();
//!     type Output = &'static str;
//!     fn on_step(&mut self, input: Option<&Envelope<()>>, ctx: &mut StepContext<(), &'static str>) {
//!         if !self.sent { self.sent = true; ctx.broadcast_others(()); }
//!         if input.is_some() { ctx.output("got one"); }
//!     }
//! }
//!
//! let pattern = FailurePattern::new(2);
//! let silent = History::new(2, ProcessSet::empty());
//! let automata = vec![Ping { sent: false }, Ping { sent: false }];
//! let config = SimConfig::new(7, 100);
//! let mut stream = StreamRun::new(&pattern, &silent, automata, &config);
//! let mut outputs = 0;
//! while let Some(event) = stream.next_event() {
//!     if let StreamEvent::Output { .. } = event { outputs += 1; }
//! }
//! assert_eq!(outputs, 2, "each process reports its delivery live");
//! ```

use crate::automaton::Automaton;
use crate::engine::{DeliveryRecord, RunResult, Scheduler, SimConfig};
use crate::trace::OutputEvent;
use rfd_core::{FailurePattern, History, ProcessId, ProcessSet, Time};
use std::collections::VecDeque;

/// A typed event observed on a streaming run.
///
/// Events within one round are ordered: crashes first (the pattern took
/// effect during the round), then per-step deliveries, emulated-detector
/// transitions, and outputs in step order.
#[derive(Clone, Debug)]
pub enum StreamEvent<O> {
    /// A process passed its crash time during this round.
    Crashed {
        /// The crashed process.
        process: ProcessId,
        /// Its crash time from the failure pattern.
        at: Time,
    },
    /// A message was received by a process step.
    Delivery(DeliveryRecord),
    /// An automaton's emulated failure-detector output changed (the
    /// `output(P)` variable of the §4.3 / §5 reductions) — the streaming
    /// analogue of a detector *transition*.
    SuspectsChanged {
        /// The emulating process.
        process: ProcessId,
        /// Round in which the change was observed.
        round: u64,
        /// The new emulated suspect set.
        suspects: ProcessSet,
    },
    /// An output event (e.g. a consensus decision) was recorded.
    Output {
        /// Round in which it was produced.
        round: u64,
        /// The recorded event (same data as the trace entry).
        event: OutputEvent<O>,
    },
    /// An automaton irrevocably decided ([`Automaton::decision`] turned
    /// `Some`): the streaming view of a consensus decision or TRB
    /// delivery. Emitted exactly once per process, after that round's
    /// [`StreamEvent::Output`] events.
    Decided {
        /// The deciding process.
        process: ProcessId,
        /// Round in which the decision was first observed.
        round: u64,
        /// The decided value.
        value: O,
    },
}

/// A resumable, incremental run: wraps a [`Scheduler`] and turns each
/// executed round into a queue of [`StreamEvent`]s.
///
/// The stream honours the configured round budget and
/// [`crate::StopCondition`] exactly like the batch path: once either
/// fires, [`StreamRun::next_event`] drains the remaining queued events
/// and then returns `None`. The runtime-layer sibling — live heartbeat
/// fleets instead of simulated automata — is `rfd_net::online::OnlineRunner`.
///
/// # Examples
///
/// ```
/// use rfd_core::{FailurePattern, History, ProcessId, ProcessSet, Time};
/// use rfd_sim::{Automaton, Envelope, SimConfig, StepContext, StreamEvent, StreamRun};
///
/// // Two silent automata; p1 crashes at t=3 — the stream surfaces the
/// // crash as a typed event while the run executes.
/// struct Idle;
/// impl Automaton for Idle {
///     type Msg = ();
///     type Output = ();
///     fn on_step(&mut self, _: Option<&Envelope<()>>, _: &mut StepContext<(), ()>) {}
/// }
///
/// let pattern = FailurePattern::new(2).with_crash(ProcessId::new(1), Time::new(3));
/// let silent = History::new(2, ProcessSet::empty());
/// let config = SimConfig::new(1, 50);
/// let mut stream = StreamRun::new(&pattern, &silent, vec![Idle, Idle], &config);
/// let mut crashes = 0;
/// while let Some(event) = stream.next_event() {
///     if let StreamEvent::Crashed { process, .. } = event {
///         assert_eq!(process, ProcessId::new(1));
///         crashes += 1;
///     }
/// }
/// assert_eq!(crashes, 1);
/// let result = stream.finish();
/// assert!(result.trace.rounds <= 50);
/// ```
pub struct StreamRun<'a, A: Automaton> {
    scheduler: Scheduler<'a, A>,
    pending: VecDeque<StreamEvent<A::Output>>,
    emitted_outputs: usize,
    last_emulated: Vec<Option<ProcessSet>>,
    reported_decided: Vec<bool>,
    reported_crashed: ProcessSet,
    exhausted: bool,
    /// Reused drain buffer for the scheduler's delivery log.
    log_scratch: Vec<DeliveryRecord>,
}

impl<'a, A: Automaton> StreamRun<'a, A> {
    /// Creates a streaming run over `automata` under `pattern`, feeding
    /// detector values from `oracle_history` — the same contract as
    /// [`Scheduler::new`].
    ///
    /// # Panics
    ///
    /// Panics if the number of automata differs from the pattern's
    /// process count, or if the oracle history covers fewer processes.
    #[must_use]
    pub fn new(
        pattern: &'a FailurePattern,
        oracle_history: &'a History<ProcessSet>,
        automata: Vec<A>,
        config: &'a SimConfig,
    ) -> Self {
        let n = pattern.num_processes();
        let mut scheduler = Scheduler::new(pattern, oracle_history, automata, config);
        scheduler.set_delivery_logging(true);
        Self {
            scheduler,
            pending: VecDeque::new(),
            emitted_outputs: 0,
            last_emulated: vec![None; n],
            reported_decided: vec![false; n],
            reported_crashed: ProcessSet::empty(),
            exhausted: false,
            log_scratch: Vec::new(),
        }
    }

    /// The wrapped scheduler (live state: time, rounds, trace so far).
    #[must_use]
    pub fn scheduler(&self) -> &Scheduler<'a, A> {
        &self.scheduler
    }

    /// Executes one round and queues its events. Returns `false` once the
    /// round budget or the configured stop condition halts the run.
    fn pump_round(&mut self) -> bool {
        if self.exhausted || self.scheduler.stop_condition_met() {
            self.exhausted = true;
            return false;
        }
        let before = self.scheduler.time();
        if !self.scheduler.step_round() {
            self.exhausted = true;
            return false;
        }
        let now = self.scheduler.time();
        // Crashes whose time fell inside this round's span. A crash is
        // effective from its pattern time even though the engine only
        // skips the process at its next slot, so report it as soon as
        // global time passes it.
        let newly_crashed = self
            .scheduler
            .pattern()
            .crashed_at(now)
            .difference(self.reported_crashed);
        for pid in newly_crashed {
            let at = self
                .scheduler
                .pattern()
                .crash_time(pid)
                .expect("member of crashed_at has a crash time");
            self.pending
                .push_back(StreamEvent::Crashed { process: pid, at });
            self.reported_crashed.insert(pid);
        }
        debug_assert!(now >= before, "global time is monotone");
        let round = self.scheduler.rounds();
        self.scheduler
            .drain_delivery_log_into(&mut self.log_scratch);
        for record in self.log_scratch.drain(..) {
            self.pending.push_back(StreamEvent::Delivery(record));
        }
        for (ix, automaton) in self.scheduler.automata().iter().enumerate() {
            let emulated = automaton.emulated_suspects();
            if let Some(suspects) = emulated {
                if self.last_emulated[ix] != Some(suspects) {
                    self.pending.push_back(StreamEvent::SuspectsChanged {
                        process: ProcessId::new(ix),
                        round,
                        suspects,
                    });
                    self.last_emulated[ix] = Some(suspects);
                }
            }
        }
        let events = &self.scheduler.trace().events;
        for event in &events[self.emitted_outputs..] {
            self.pending.push_back(StreamEvent::Output {
                round,
                event: event.clone(),
            });
        }
        self.emitted_outputs = events.len();
        for (ix, automaton) in self.scheduler.automata().iter().enumerate() {
            if !self.reported_decided[ix] {
                if let Some(value) = automaton.decision() {
                    self.reported_decided[ix] = true;
                    self.pending.push_back(StreamEvent::Decided {
                        process: ProcessId::new(ix),
                        round,
                        value,
                    });
                }
            }
        }
        true
    }

    /// The next event, executing further rounds on demand. `None` once
    /// the run is over (budget exhausted or stop condition met) and every
    /// queued event has been delivered.
    pub fn next_event(&mut self) -> Option<StreamEvent<A::Output>> {
        while self.pending.is_empty() {
            if !self.pump_round() {
                return None;
            }
        }
        self.pending.pop_front()
    }

    /// Runs the remaining rounds to completion and returns the final
    /// [`RunResult`] — identical to what the batch [`crate::run`] would
    /// have produced under the same configuration. No further events are
    /// observed, so event recording is switched off for the remainder:
    /// finishing early costs no more than the batch path would.
    #[must_use]
    pub fn finish(mut self) -> RunResult<A> {
        self.scheduler.set_delivery_logging(false);
        self.pending.clear();
        while !self.exhausted && !self.scheduler.stop_condition_met() && self.scheduler.step_round()
        {
        }
        self.scheduler.finish()
    }
}

impl<A: Automaton> Iterator for StreamRun<'_, A> {
    type Item = StreamEvent<A::Output>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_event()
    }
}

impl<A: Automaton> std::fmt::Debug for StreamRun<'_, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamRun")
            .field("scheduler", &self.scheduler)
            .field("pending", &self.pending.len())
            .field("emitted_outputs", &self.emitted_outputs)
            .field("exhausted", &self.exhausted)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::StepContext;
    use crate::engine::run;
    use crate::message::Envelope;
    use crate::StopCondition;

    /// Every process broadcasts a token once, then outputs each received
    /// token's sender index.
    struct Gossip {
        started: bool,
    }

    impl Automaton for Gossip {
        type Msg = usize;
        type Output = usize;

        fn on_step(
            &mut self,
            input: Option<&Envelope<usize>>,
            ctx: &mut StepContext<usize, usize>,
        ) {
            if !self.started {
                self.started = true;
                ctx.broadcast_others(ctx.me().index());
            }
            if let Some(env) = input {
                ctx.output(env.payload);
            }
        }
    }

    fn gossip_automata(n: usize) -> Vec<Gossip> {
        (0..n).map(|_| Gossip { started: false }).collect()
    }

    fn silent_history(n: usize) -> History<ProcessSet> {
        History::new(n, ProcessSet::empty())
    }

    #[test]
    fn stream_yields_every_delivery_and_output_exactly_once() {
        let n = 4;
        let pattern = FailurePattern::new(n);
        let config = SimConfig::new(7, 200);
        let silent = silent_history(n);
        let mut deliveries = 0u64;
        let mut outputs = 0usize;
        let mut stream = StreamRun::new(&pattern, &silent, gossip_automata(n), &config);
        while let Some(ev) = stream.next_event() {
            match ev {
                StreamEvent::Delivery(_) => deliveries += 1,
                StreamEvent::Output { .. } => outputs += 1,
                _ => {}
            }
        }
        let result = stream.finish();
        assert_eq!(deliveries, result.trace.messages_delivered);
        assert_eq!(deliveries, 12, "4 broadcasts × 3 destinations");
        assert_eq!(outputs, result.trace.events.len());
    }

    #[test]
    fn stream_matches_batch_run_on_the_same_seed() {
        let n = 4;
        let pattern = FailurePattern::new(n).with_crash(ProcessId::new(3), Time::new(5));
        let config = SimConfig::new(123, 150);
        let silent = silent_history(n);
        let batch = run(&pattern, &silent, gossip_automata(n), &config);
        let stream = StreamRun::new(&pattern, &silent, gossip_automata(n), &config);
        let streamed = stream.finish();
        assert_eq!(batch.trace.steps, streamed.trace.steps);
        assert_eq!(batch.trace.messages_sent, streamed.trace.messages_sent);
        assert_eq!(
            batch.trace.messages_delivered,
            streamed.trace.messages_delivered
        );
        assert_eq!(batch.trace.end_time, streamed.trace.end_time);
        assert_eq!(batch.trace.events.len(), streamed.trace.events.len());
        for (x, y) in batch.trace.events.iter().zip(&streamed.trace.events) {
            assert_eq!(x.process, y.process);
            assert_eq!(x.time, y.time);
            assert_eq!(x.value, y.value);
        }
    }

    #[test]
    fn crash_events_are_reported_once_with_the_pattern_time() {
        let n = 3;
        let pattern = FailurePattern::new(n).with_crash(ProcessId::new(1), Time::new(4));
        let config = SimConfig::new(2, 50);
        let silent = silent_history(n);
        let crashes: Vec<(ProcessId, Time)> =
            StreamRun::new(&pattern, &silent, gossip_automata(n), &config)
                .filter_map(|ev| match ev {
                    StreamEvent::Crashed { process, at } => Some((process, at)),
                    _ => None,
                })
                .collect();
        assert_eq!(crashes, vec![(ProcessId::new(1), Time::new(4))]);
    }

    #[test]
    fn stream_respects_the_stop_condition() {
        let n = 3;
        let pattern = FailurePattern::new(n);
        let config = SimConfig::new(9, 10_000).with_stop(StopCondition::EachCorrectOutput(1));
        let silent = silent_history(n);
        let mut stream = StreamRun::new(&pattern, &silent, gossip_automata(n), &config);
        while stream.next_event().is_some() {}
        assert!(
            stream.scheduler().rounds() < 10_000,
            "stop condition must halt the stream early"
        );
    }

    #[test]
    fn stream_is_resumable_between_events() {
        let n = 4;
        let pattern = FailurePattern::new(n);
        let config = SimConfig::new(21, 150);
        let silent = silent_history(n);
        let mut stream = StreamRun::new(&pattern, &silent, gossip_automata(n), &config);
        // Pull a single event, inspect live state, then drain the rest.
        let first = stream.next_event().expect("a gossip run has events");
        assert!(matches!(first, StreamEvent::Delivery(_)));
        let mid_rounds = stream.scheduler().rounds();
        assert!(mid_rounds >= 1);
        let mut rest = 0;
        while stream.next_event().is_some() {
            rest += 1;
        }
        assert!(rest > 0);
        // The completed run still matches the batch totals.
        let result = stream.finish();
        let batch = run(&pattern, &silent, gossip_automata(n), &config);
        assert_eq!(result.trace.messages_sent, batch.trace.messages_sent);
    }

    /// Broadcasts once and irrevocably "decides" on the first token it
    /// receives (exposes the [`Automaton::decision`] hook).
    struct FirstToken {
        started: bool,
        decided: Option<usize>,
    }

    impl Automaton for FirstToken {
        type Msg = usize;
        type Output = usize;

        fn on_step(
            &mut self,
            input: Option<&Envelope<usize>>,
            ctx: &mut StepContext<usize, usize>,
        ) {
            if !self.started {
                self.started = true;
                ctx.broadcast_others(ctx.me().index());
            }
            if let (Some(env), None) = (input, self.decided) {
                self.decided = Some(env.payload);
                ctx.output(env.payload);
            }
        }

        fn decision(&self) -> Option<usize> {
            self.decided
        }
    }

    #[test]
    fn decisions_stream_exactly_once_per_process() {
        let n = 4;
        let pattern = FailurePattern::new(n);
        let config = SimConfig::new(11, 300);
        let silent = silent_history(n);
        let automata: Vec<FirstToken> = (0..n)
            .map(|_| FirstToken {
                started: false,
                decided: None,
            })
            .collect();
        let mut decided: Vec<Option<usize>> = vec![None; n];
        let mut count = 0;
        for ev in StreamRun::new(&pattern, &silent, automata, &config) {
            if let StreamEvent::Decided { process, value, .. } = ev {
                assert!(
                    decided[process.index()].is_none(),
                    "{process} decided twice in the stream"
                );
                decided[process.index()] = Some(value);
                count += 1;
            }
        }
        assert_eq!(count, n, "every process decides exactly once: {decided:?}");
    }

    /// An automaton that exposes an emulated detector: it "suspects"
    /// every sender it has heard from (artificial, but transition-rich).
    struct Echoes {
        heard: ProcessSet,
    }

    impl Automaton for Echoes {
        type Msg = usize;
        type Output = usize;

        fn on_step(
            &mut self,
            input: Option<&Envelope<usize>>,
            ctx: &mut StepContext<usize, usize>,
        ) {
            if self.heard.is_empty() {
                self.heard.insert(ctx.me());
                ctx.broadcast_others(ctx.me().index());
            }
            if let Some(env) = input {
                self.heard.insert(env.from);
            }
        }

        fn emulated_suspects(&self) -> Option<ProcessSet> {
            Some(self.heard)
        }
    }

    #[test]
    fn emulated_transitions_stream_as_suspect_changes() {
        let n = 3;
        let pattern = FailurePattern::new(n);
        let config = SimConfig::new(5, 100);
        let silent = silent_history(n);
        let automata: Vec<Echoes> = (0..n)
            .map(|_| Echoes {
                heard: ProcessSet::empty(),
            })
            .collect();
        let changes: Vec<StreamEvent<usize>> = StreamRun::new(&pattern, &silent, automata, &config)
            .filter(|ev| matches!(ev, StreamEvent::SuspectsChanged { .. }))
            .collect();
        // Each process transitions at least twice: {me} then grows as
        // tokens arrive; final state is the full set everywhere.
        assert!(changes.len() >= n * 2, "{changes:?}");
        let mut finals = vec![ProcessSet::empty(); n];
        for ev in &changes {
            if let StreamEvent::SuspectsChanged {
                process, suspects, ..
            } = ev
            {
                finals[process.index()] = *suspects;
            }
        }
        for f in finals {
            assert_eq!(f, ProcessSet::full(n));
        }
    }
}
