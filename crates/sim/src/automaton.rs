//! The process automaton abstraction (§2.3 of the paper).
//!
//! In each step a process atomically (1) receives one message or the null
//! message λ, (2) queries its failure detector module, and (3) changes
//! state and sends messages, as a function of the automaton, its state,
//! the received message, and the detector value seen.
//!
//! Two documented relaxations of the paper's step (both standard, neither
//! affecting any result):
//!
//! * a step may send to **several** destinations ("send to all" is one
//!   macro-step rather than `n` micro-steps);
//! * besides state changes, a step may emit an *output event* (e.g. a
//!   consensus decision), which the engine records in the
//!   [`crate::trace::Trace`] along with its causal metadata.

use crate::message::Envelope;
use rfd_core::{ProcessId, ProcessSet};

/// The view of a step offered to an automaton: identity, detector value,
/// and effect buffers.
#[derive(Debug)]
pub struct StepContext<M, O> {
    me: ProcessId,
    n: usize,
    suspects: ProcessSet,
    pub(crate) outbox: Vec<(ProcessId, M)>,
    pub(crate) outputs: Vec<O>,
}

impl<M, O> StepContext<M, O> {
    pub(crate) fn new(me: ProcessId, n: usize, suspects: ProcessSet) -> Self {
        Self::from_buffers(me, n, suspects, Vec::new(), Vec::new())
    }

    /// A context over caller-supplied (empty) effect buffers, so a hot
    /// loop can recycle its allocations across steps.
    pub(crate) fn from_buffers(
        me: ProcessId,
        n: usize,
        suspects: ProcessSet,
        outbox: Vec<(ProcessId, M)>,
        outputs: Vec<O>,
    ) -> Self {
        debug_assert!(outbox.is_empty() && outputs.is_empty());
        Self {
            me,
            n,
            suspects,
            outbox,
            outputs,
        }
    }

    /// Creates a detached context for *embedding* one automaton inside
    /// another (protocol composition): the wrapper drives the inner
    /// automaton with this context and then routes the collected effects
    /// through its own context via [`StepContext::into_effects`].
    #[must_use]
    pub fn new_for_embedding(me: ProcessId, n: usize, suspects: ProcessSet) -> Self {
        Self::new(me, n, suspects)
    }

    /// Consumes the context and returns its buffered effects:
    /// `(sends, outputs)`.
    #[must_use]
    pub fn into_effects(self) -> (Vec<(ProcessId, M)>, Vec<O>) {
        (self.outbox, self.outputs)
    }

    /// The identity of the stepping process.
    #[must_use]
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The number of processes `n = |Ω|`.
    #[must_use]
    pub fn num_processes(&self) -> usize {
        self.n
    }

    /// The value seen at the failure detector module in this step
    /// (the set of currently suspected processes).
    #[must_use]
    pub fn suspects(&self) -> ProcessSet {
        self.suspects
    }

    /// Sends `payload` to `to` (buffered; the engine stamps causal
    /// metadata and a delivery delay).
    pub fn send(&mut self, to: ProcessId, payload: M) {
        self.outbox.push((to, payload));
    }

    /// Sends `payload` to every process, including the sender itself.
    ///
    /// Self-delivery goes through the buffer like any other message, which
    /// keeps broadcast-based algorithms uniform.
    pub fn broadcast(&mut self, payload: M)
    where
        M: Clone,
    {
        for ix in 0..self.n {
            self.send(ProcessId::new(ix), payload.clone());
        }
    }

    /// Sends `payload` to every process except the sender.
    pub fn broadcast_others(&mut self, payload: M)
    where
        M: Clone,
    {
        for ix in 0..self.n {
            if ix != self.me.index() {
                self.send(ProcessId::new(ix), payload.clone());
            }
        }
    }

    /// Emits an output event (decision, delivery, suspicion update…)
    /// recorded by the engine with the step's causal metadata.
    pub fn output(&mut self, value: O) {
        self.outputs.push(value);
    }
}

/// A deterministic process automaton `Aᵢ`.
///
/// The engine drives one automaton per process. `Msg` is the algorithm's
/// message alphabet; `Output` the type of observable events (e.g. decided
/// values).
pub trait Automaton {
    /// Message alphabet.
    type Msg: Clone;
    /// Observable output events.
    type Output: Clone;

    /// Executes one step: `input` is the received envelope or `None` for
    /// the null message λ; the failure detector value seen is
    /// `ctx.suspects()`.
    fn on_step(
        &mut self,
        input: Option<&Envelope<Self::Msg>>,
        ctx: &mut StepContext<Self::Msg, Self::Output>,
    );

    /// The automaton's current emulated failure-detector output, if it
    /// maintains one (used by the reduction algorithms of §4.3 and §5 to
    /// expose their `output(P)` variable). The engine samples this after
    /// every step to build the emulated history.
    fn emulated_suspects(&self) -> Option<ProcessSet> {
        None
    }

    /// The automaton's decided (or delivered) value, if the algorithm it
    /// runs has irrevocably reached one — a consensus decision, a TRB
    /// delivery. Unlike [`StepContext::output`] (a per-step event log),
    /// this is sampled *state*: streaming drivers poll it after every
    /// round and surface the `None → Some` transition as a typed
    /// decision event ([`crate::stream::StreamEvent::Decided`]).
    fn decision(&self) -> Option<Self::Output> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_buffers_sends_and_outputs() {
        let mut ctx: StepContext<u32, u32> =
            StepContext::new(ProcessId::new(0), 3, ProcessSet::empty());
        ctx.broadcast_others(7);
        ctx.output(1);
        assert_eq!(ctx.outbox.len(), 2);
        assert_eq!(ctx.outputs, vec![1]);
        assert!(ctx.outbox.iter().all(|(to, _)| *to != ProcessId::new(0)));
    }

    #[test]
    fn broadcast_includes_self() {
        let mut ctx: StepContext<u32, u32> =
            StepContext::new(ProcessId::new(1), 3, ProcessSet::empty());
        ctx.broadcast(9);
        assert_eq!(ctx.outbox.len(), 3);
    }
}
