//! The run engine: executes automata under the FLP + failure detector
//! model (§2.3–2.4).
//!
//! The engine advances a global [`Time`] (one tick per step, invisible to
//! automata), drives one step per alive process per *round* in a randomly
//! shuffled order (process fairness), delivers each message after a
//! bounded random delay (channel reliability), injects crashes from a
//! [`FailurePattern`], feeds detector values from a pre-generated oracle
//! [`History`], and records decisions with their causal pasts.

use crate::automaton::{Automaton, StepContext};
use crate::delivery::{Adversary, DeliveryModel};
use crate::message::{Envelope, Pending};
use crate::trace::{OutputEvent, Trace};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rfd_core::{FailurePattern, History, ProcessId, ProcessSet, Time};

/// When the engine stops (besides the hard round cap).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum StopCondition {
    /// Run the full round budget.
    #[default]
    RoundBudget,
    /// Stop early once every correct process has produced at least this
    /// many output events.
    EachCorrectOutput(usize),
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// RNG seed for scheduling and delivery delays.
    pub seed: u64,
    /// Hard cap on rounds (each round = one step per alive process).
    pub max_rounds: u64,
    /// Message delay model.
    pub delivery: DeliveryModel,
    /// Optional schedule adversary.
    pub adversary: Adversary,
    /// Early-stop condition.
    pub stop: StopCondition,
}

impl SimConfig {
    /// A configuration with the given seed and round budget and default
    /// delivery.
    #[must_use]
    pub fn new(seed: u64, max_rounds: u64) -> Self {
        Self {
            seed,
            max_rounds,
            delivery: DeliveryModel::default(),
            adversary: Adversary::None,
            stop: StopCondition::RoundBudget,
        }
    }

    /// Sets the delivery model (builder style).
    #[must_use]
    pub fn with_delivery(mut self, delivery: DeliveryModel) -> Self {
        self.delivery = delivery;
        self
    }

    /// Sets the adversary (builder style).
    #[must_use]
    pub fn with_adversary(mut self, adversary: Adversary) -> Self {
        self.adversary = adversary;
        self
    }

    /// Sets the early-stop condition (builder style).
    #[must_use]
    pub fn with_stop(mut self, stop: StopCondition) -> Self {
        self.stop = stop;
        self
    }
}

/// Upper bound on the global time consumed by `rounds` rounds with `n`
/// processes — use it as the oracle-history horizon.
#[must_use]
pub fn ticks_for_rounds(n: usize, rounds: u64) -> Time {
    Time::new((n as u64).saturating_mul(rounds).saturating_add(1))
}

/// The result of a completed run.
#[derive(Debug)]
pub struct RunResult<A: Automaton> {
    /// Recorded output events and statistics.
    pub trace: Trace<A::Output>,
    /// The emulated failure-detector history, if any automaton exposed
    /// one via [`Automaton::emulated_suspects`] (the `output(P)` variable
    /// of §4.3 / §5).
    pub emulated: Option<History<ProcessSet>>,
    /// Final automata states (for inspection).
    pub automata: Vec<A>,
}

/// Executes a run of `automata` (one per process) under `pattern`,
/// feeding failure detector values from `oracle_history`.
///
/// # Panics
///
/// Panics if the number of automata differs from the pattern's process
/// count, or if the oracle history covers fewer processes.
pub fn run<A: Automaton>(
    pattern: &FailurePattern,
    oracle_history: &History<ProcessSet>,
    mut automata: Vec<A>,
    config: &SimConfig,
) -> RunResult<A> {
    let n = pattern.num_processes();
    assert_eq!(automata.len(), n, "need exactly one automaton per process");
    assert_eq!(
        oracle_history.num_processes(),
        n,
        "oracle history process count mismatch"
    );

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut time = Time::ZERO;
    let mut next_msg_id: u64 = 0;
    let mut inboxes: Vec<Vec<Pending<A::Msg>>> = (0..n).map(|_| Vec::new()).collect();
    let mut heard: Vec<ProcessSet> = (0..n)
        .map(|ix| ProcessSet::singleton(ProcessId::new(ix)))
        .collect();
    let mut trace = Trace {
        events: Vec::new(),
        messages_sent: 0,
        messages_delivered: 0,
        steps: 0,
        end_time: Time::ZERO,
        rounds: 0,
    };
    let mut emulated: Option<History<ProcessSet>> = None;
    let mut order: Vec<usize> = (0..n).collect();

    'rounds: for round in 0..config.max_rounds {
        trace.rounds = round + 1;
        order.shuffle(&mut rng);
        for &ix in &order {
            let pid = ProcessId::new(ix);
            if pattern.is_crashed(pid, time) {
                // A crashed process performs no action after its crash
                // time; global time does not advance for skipped slots.
                continue;
            }
            // Receive: oldest due message, λ if none.
            let input = take_due(&mut inboxes[ix], time);
            if input.is_some() {
                trace.messages_delivered += 1;
            }
            if let Some(env) = &input {
                heard[ix] |= env.causal_past;
            }
            let suspects = *oracle_history.value(pid, time);
            let mut ctx: StepContext<A::Msg, A::Output> = StepContext::new(pid, n, suspects);
            automata[ix].on_step(input.as_ref(), &mut ctx);
            // Effects: sends...
            let causal = heard[ix];
            let StepContext { outbox, outputs, .. } = ctx;
            for (to, payload) in outbox {
                let delay = rng.gen_range(config.delivery.min_delay..=config.delivery.max_delay);
                let mut due = time.advance(delay.max(1));
                if let Some(earliest) = config.adversary.earliest(pid, to) {
                    due = due.max(earliest);
                }
                inboxes[to.index()].push(Pending {
                    envelope: Envelope {
                        id: next_msg_id,
                        from: pid,
                        to,
                        payload,
                        sent_at: time,
                        causal_past: causal,
                    },
                    due,
                });
                next_msg_id += 1;
                trace.messages_sent += 1;
            }
            // ...outputs...
            for value in outputs {
                trace.events.push(OutputEvent {
                    process: pid,
                    time,
                    value,
                    causal_past: causal,
                });
            }
            // ...and the emulated detector output.
            if let Some(suspected) = automata[ix].emulated_suspects() {
                let h = emulated.get_or_insert_with(|| History::new(n, ProcessSet::empty()));
                h.set_from(pid, time, suspected);
            }
            trace.steps += 1;
            time = time.next();
        }
        if let StopCondition::EachCorrectOutput(k) = config.stop {
            let done = pattern
                .correct()
                .iter()
                .all(|pid| trace.outputs_of(pid).count() >= k);
            if done {
                break 'rounds;
            }
        }
    }
    trace.end_time = time;
    RunResult {
        trace,
        emulated,
        automata,
    }
}

/// Removes and returns the due message with the smallest `(due, id)`.
fn take_due<M>(inbox: &mut Vec<Pending<M>>, now: Time) -> Option<Envelope<M>> {
    let mut best: Option<usize> = None;
    for (i, p) in inbox.iter().enumerate() {
        if p.due <= now {
            let better = match best {
                None => true,
                Some(b) => {
                    let bb = &inbox[b];
                    (p.due, p.envelope.id) < (bb.due, bb.envelope.id)
                }
            };
            if better {
                best = Some(i);
            }
        }
    }
    best.map(|i| inbox.swap_remove(i).envelope)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every process broadcasts a token once, then outputs each received
    /// token's sender index.
    struct Gossip {
        started: bool,
    }

    impl Automaton for Gossip {
        type Msg = usize;
        type Output = usize;

        fn on_step(
            &mut self,
            input: Option<&Envelope<usize>>,
            ctx: &mut StepContext<usize, usize>,
        ) {
            if !self.started {
                self.started = true;
                ctx.broadcast_others(ctx.me().index());
            }
            if let Some(env) = input {
                ctx.output(env.payload);
            }
        }
    }

    fn gossip_automata(n: usize) -> Vec<Gossip> {
        (0..n).map(|_| Gossip { started: false }).collect()
    }

    fn silent_history(n: usize) -> History<ProcessSet> {
        History::new(n, ProcessSet::empty())
    }

    #[test]
    fn all_messages_delivered_to_correct_processes() {
        let n = 4;
        let pattern = FailurePattern::new(n);
        let config = SimConfig::new(7, 200);
        let result = run(&pattern, &silent_history(n), gossip_automata(n), &config);
        // 4 broadcasts × 3 destinations.
        assert_eq!(result.trace.messages_sent, 12);
        assert_eq!(result.trace.messages_delivered, 12);
        // Each process outputs the 3 tokens it received.
        for ix in 0..n {
            assert_eq!(result.trace.outputs_of(ProcessId::new(ix)).count(), 3);
        }
    }

    #[test]
    fn crashed_process_takes_no_steps_after_crash() {
        let n = 3;
        // p0 crashes immediately: it never gets a step.
        let pattern = FailurePattern::new(n).with_crash(ProcessId::new(0), Time::ZERO);
        let config = SimConfig::new(3, 100);
        let result = run(&pattern, &silent_history(n), gossip_automata(n), &config);
        // p0 sent nothing; p1 and p2 each broadcast 2 messages, and the
        // copy addressed to p0 is never delivered.
        assert_eq!(result.trace.messages_sent, 4);
        assert_eq!(result.trace.messages_delivered, 2);
        assert_eq!(result.trace.outputs_of(ProcessId::new(0)).count(), 0);
    }

    #[test]
    fn causal_past_propagates_transitively() {
        /// p0 sends to p1; p1 forwards to p2; p2 outputs. p2's event must
        /// have p0 in its causal past.
        struct Chain {
            sent: bool,
        }
        impl Automaton for Chain {
            type Msg = u8;
            type Output = u8;
            fn on_step(
                &mut self,
                input: Option<&Envelope<u8>>,
                ctx: &mut StepContext<u8, u8>,
            ) {
                let me = ctx.me().index();
                if me == 0 && !self.sent {
                    self.sent = true;
                    ctx.send(ProcessId::new(1), 1);
                }
                if let Some(env) = input {
                    if me == 1 && !self.sent {
                        self.sent = true;
                        ctx.send(ProcessId::new(2), env.payload + 1);
                    }
                    if me == 2 {
                        ctx.output(env.payload);
                    }
                }
            }
        }
        let pattern = FailurePattern::new(3);
        let config = SimConfig::new(11, 300);
        let automata = (0..3).map(|_| Chain { sent: false }).collect();
        let result = run(&pattern, &silent_history(3), automata, &config);
        let ev = result
            .trace
            .outputs_of(ProcessId::new(2))
            .next()
            .expect("p2 must output");
        assert!(ev.causal_past.contains(ProcessId::new(0)));
        assert!(ev.causal_past.contains(ProcessId::new(1)));
        assert!(ev.causal_past.contains(ProcessId::new(2)));
    }

    #[test]
    fn adversary_postpones_delivery() {
        let n = 2;
        let pattern = FailurePattern::new(n);
        let config = SimConfig::new(5, 400)
            .with_adversary(Adversary::HoldFrom(ProcessId::new(0), Time::new(300)));
        let result = run(&pattern, &silent_history(n), gossip_automata(n), &config);
        // p1's token to p0 arrives promptly; p0's token to p1 is held
        // until t=300.
        let p1_rx = result
            .trace
            .outputs_of(ProcessId::new(1))
            .next()
            .expect("p1 eventually receives");
        assert!(p1_rx.time >= Time::new(300));
        let p0_rx = result
            .trace
            .outputs_of(ProcessId::new(0))
            .next()
            .expect("p0 receives");
        assert!(p0_rx.time < Time::new(300));
    }

    #[test]
    fn early_stop_condition_halts_run() {
        let n = 3;
        let pattern = FailurePattern::new(n);
        let budget = SimConfig::new(9, 10_000)
            .with_stop(StopCondition::EachCorrectOutput(1));
        let result = run(&pattern, &silent_history(n), gossip_automata(n), &budget);
        assert!(result.trace.rounds < 10_000, "should stop early");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let n = 4;
        let pattern = FailurePattern::new(n).with_crash(ProcessId::new(3), Time::new(5));
        let config = SimConfig::new(123, 100);
        let a = run(&pattern, &silent_history(n), gossip_automata(n), &config);
        let b = run(&pattern, &silent_history(n), gossip_automata(n), &config);
        assert_eq!(a.trace.messages_sent, b.trace.messages_sent);
        assert_eq!(a.trace.steps, b.trace.steps);
        assert_eq!(a.trace.events.len(), b.trace.events.len());
        for (x, y) in a.trace.events.iter().zip(&b.trace.events) {
            assert_eq!(x.process, y.process);
            assert_eq!(x.time, y.time);
        }
    }
}
