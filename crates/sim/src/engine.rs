//! The run engine: executes automata under the FLP + failure detector
//! model (§2.3–2.4).
//!
//! The engine advances a global [`Time`] (one tick per step, invisible to
//! automata), drives one step per alive process per *round* in a randomly
//! shuffled order (process fairness), delivers each message after a
//! bounded random delay (channel reliability), injects crashes from a
//! [`FailurePattern`], feeds detector values from a pre-generated oracle
//! [`History`], and records decisions with their causal pasts.
//!
//! The round-driving loop lives in the reusable [`Scheduler`]: the
//! one-shot [`run`] drives it to completion under the configured
//! [`StopCondition`], while callers with bespoke early-exit predicates
//! use [`Scheduler::run_until`] or drive [`Scheduler::step_round`]
//! directly. Message delivery is heap-ordered per process (see
//! [`crate::queue::EventQueue`]) rather than the former O(inbox) linear
//! rescan per receive.

use crate::automaton::{Automaton, StepContext};
use crate::delivery::{Adversary, DeliveryModel};
use crate::message::Envelope;
use crate::queue::EventQueue;
use crate::trace::{OutputEvent, Trace};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rfd_core::{FailurePattern, History, ProcessId, ProcessSet, Time};

/// When the engine stops (besides the hard round cap).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum StopCondition {
    /// Run the full round budget.
    #[default]
    RoundBudget,
    /// Stop early once every correct process has produced at least this
    /// many output events.
    EachCorrectOutput(usize),
}

impl StopCondition {
    /// Whether the condition is met on the trace so far. The
    /// [`Scheduler`] consults this after every round; bespoke predicates
    /// plug in through [`Scheduler::run_until`] instead.
    #[must_use]
    pub fn is_met<O: Clone>(&self, pattern: &FailurePattern, trace: &Trace<O>) -> bool {
        match *self {
            StopCondition::RoundBudget => false,
            StopCondition::EachCorrectOutput(k) => pattern
                .correct()
                .iter()
                .all(|pid| trace.outputs_of(pid).count() >= k),
        }
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// RNG seed for scheduling and delivery delays.
    pub seed: u64,
    /// Hard cap on rounds (each round = one step per alive process).
    pub max_rounds: u64,
    /// Message delay model.
    pub delivery: DeliveryModel,
    /// Optional schedule adversary.
    pub adversary: Adversary,
    /// Early-stop condition.
    pub stop: StopCondition,
}

impl SimConfig {
    /// A configuration with the given seed and round budget and default
    /// delivery.
    #[must_use]
    pub fn new(seed: u64, max_rounds: u64) -> Self {
        Self {
            seed,
            max_rounds,
            delivery: DeliveryModel::default(),
            adversary: Adversary::None,
            stop: StopCondition::RoundBudget,
        }
    }

    /// Sets the delivery model (builder style).
    #[must_use]
    pub fn with_delivery(mut self, delivery: DeliveryModel) -> Self {
        self.delivery = delivery;
        self
    }

    /// Sets the adversary (builder style).
    #[must_use]
    pub fn with_adversary(mut self, adversary: Adversary) -> Self {
        self.adversary = adversary;
        self
    }

    /// Sets the early-stop condition (builder style).
    #[must_use]
    pub fn with_stop(mut self, stop: StopCondition) -> Self {
        self.stop = stop;
        self
    }

    /// The same configuration with another seed (used by
    /// [`crate::campaign::Campaign`] to fan one base configuration out
    /// over a seed sweep).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Upper bound on the global time consumed by `rounds` rounds with `n`
/// processes — use it as the oracle-history horizon. Saturates at
/// [`Time::MAX`] instead of overflowing.
#[must_use]
pub fn ticks_for_rounds(n: usize, rounds: u64) -> Time {
    Time::new((n as u64).saturating_mul(rounds).saturating_add(1))
}

/// Metadata of one message delivery, recorded by the [`Scheduler`] when
/// delivery logging is enabled (see [`Scheduler::set_delivery_logging`]).
/// The payload itself stays with the receiving automaton; the log keeps
/// only the envelope metadata a streaming observer needs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Engine-assigned message id (unique per run).
    pub id: u64,
    /// Sender.
    pub from: ProcessId,
    /// Receiver.
    pub to: ProcessId,
    /// Global time the message was sent.
    pub sent_at: Time,
    /// Global time of the receiving step.
    pub delivered_at: Time,
}

/// The result of a completed run.
#[derive(Debug)]
pub struct RunResult<A: Automaton> {
    /// Recorded output events and statistics.
    pub trace: Trace<A::Output>,
    /// The emulated failure-detector history, if any automaton exposed
    /// one via [`Automaton::emulated_suspects`] (the `output(P)` variable
    /// of §4.3 / §5).
    pub emulated: Option<History<ProcessSet>>,
    /// Final automata states (for inspection).
    pub automata: Vec<A>,
}

/// The reusable round-driving loop: owns all run state and advances it
/// one round at a time.
///
/// [`run`] is the one-shot wrapper. Driving the scheduler manually
/// supports early-exit predicates beyond [`StopCondition`]:
///
/// ```
/// use rfd_sim::{Automaton, Envelope, Scheduler, SimConfig, StepContext};
/// use rfd_core::{FailurePattern, History, ProcessSet};
///
/// struct Quiet;
/// impl Automaton for Quiet {
///     type Msg = ();
///     type Output = ();
///     fn on_step(&mut self, _: Option<&Envelope<()>>, _: &mut StepContext<(), ()>) {}
/// }
///
/// let pattern = FailurePattern::new(2);
/// let silent = History::new(2, ProcessSet::empty());
/// let config = SimConfig::new(1, 1_000);
/// let result = Scheduler::new(&pattern, &silent, vec![Quiet, Quiet], &config)
///     .run_until(|s| s.trace().steps >= 10); // custom predicate
/// assert!(result.trace.rounds < 1_000);
/// ```
pub struct Scheduler<'a, A: Automaton> {
    pattern: &'a FailurePattern,
    oracle: &'a History<ProcessSet>,
    config: &'a SimConfig,
    rng: StdRng,
    time: Time,
    next_msg_id: u64,
    queues: Vec<EventQueue<A::Msg>>,
    heard: Vec<ProcessSet>,
    order: Vec<usize>,
    trace: Trace<A::Output>,
    emulated: Option<History<ProcessSet>>,
    automata: Vec<A>,
    delivery_log: Option<Vec<DeliveryRecord>>,
    /// Reused step-effect buffers: every [`StepContext`] borrows these
    /// instead of allocating fresh `Vec`s, so a steady-state step
    /// allocates nothing.
    outbox_scratch: Vec<(ProcessId, A::Msg)>,
    outputs_scratch: Vec<A::Output>,
}

impl<'a, A: Automaton> Scheduler<'a, A> {
    /// Creates a scheduler over `automata` (one per process) under
    /// `pattern`, feeding detector values from `oracle_history`.
    ///
    /// # Panics
    ///
    /// Panics if the number of automata differs from the pattern's
    /// process count, or if the oracle history covers fewer processes.
    #[must_use]
    pub fn new(
        pattern: &'a FailurePattern,
        oracle_history: &'a History<ProcessSet>,
        automata: Vec<A>,
        config: &'a SimConfig,
    ) -> Self {
        let n = pattern.num_processes();
        assert_eq!(automata.len(), n, "need exactly one automaton per process");
        assert_eq!(
            oracle_history.num_processes(),
            n,
            "oracle history process count mismatch"
        );
        Self {
            pattern,
            oracle: oracle_history,
            config,
            rng: StdRng::seed_from_u64(config.seed),
            time: Time::ZERO,
            next_msg_id: 0,
            queues: (0..n).map(|_| EventQueue::new()).collect(),
            heard: (0..n)
                .map(|ix| ProcessSet::singleton(ProcessId::new(ix)))
                .collect(),
            order: (0..n).collect(),
            trace: Trace {
                events: Vec::new(),
                messages_sent: 0,
                messages_delivered: 0,
                steps: 0,
                end_time: Time::ZERO,
                rounds: 0,
            },
            emulated: None,
            automata,
            delivery_log: None,
            outbox_scratch: Vec::new(),
            outputs_scratch: Vec::new(),
        }
    }

    /// Enables or disables per-delivery logging (disabled by default; the
    /// batch path pays nothing for the streaming feature). While enabled,
    /// every receive appends a [`DeliveryRecord`]; drain the log with
    /// [`Scheduler::take_delivery_log`].
    pub fn set_delivery_logging(&mut self, on: bool) {
        match (on, self.delivery_log.is_some()) {
            (true, false) => self.delivery_log = Some(Vec::new()),
            (false, true) => self.delivery_log = None,
            _ => {}
        }
    }

    /// Takes the delivery records accumulated since the last call
    /// (empty when logging is disabled).
    pub fn take_delivery_log(&mut self) -> Vec<DeliveryRecord> {
        self.delivery_log
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Appends the delivery records accumulated since the last drain to
    /// `into` and clears the log — the allocation-free sibling of
    /// [`Scheduler::take_delivery_log`] for callers that poll every
    /// round with a reused buffer.
    pub fn drain_delivery_log_into(&mut self, into: &mut Vec<DeliveryRecord>) {
        if let Some(log) = &mut self.delivery_log {
            into.append(log);
        }
    }

    /// The automata being driven, indexed by process.
    #[must_use]
    pub fn automata(&self) -> &[A] {
        &self.automata
    }

    /// The trace recorded so far.
    #[must_use]
    pub fn trace(&self) -> &Trace<A::Output> {
        &self.trace
    }

    /// The current global time.
    #[must_use]
    pub fn time(&self) -> Time {
        self.time
    }

    /// Rounds executed so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.trace.rounds
    }

    /// The failure pattern driving this run.
    #[must_use]
    pub fn pattern(&self) -> &FailurePattern {
        self.pattern
    }

    /// Whether the configured [`StopCondition`] is met.
    #[must_use]
    pub fn stop_condition_met(&self) -> bool {
        self.config.stop.is_met(self.pattern, &self.trace)
    }

    /// Executes one round (one step per alive process, in a freshly
    /// shuffled order). Returns `false` — without executing anything —
    /// once the round budget is exhausted.
    pub fn step_round(&mut self) -> bool {
        if self.trace.rounds >= self.config.max_rounds {
            return false;
        }
        self.trace.rounds += 1;
        self.order.shuffle(&mut self.rng);
        for slot in 0..self.order.len() {
            let ix = self.order[slot];
            let pid = ProcessId::new(ix);
            if self.pattern.is_crashed(pid, self.time) {
                // A crashed process performs no action after its crash
                // time; global time does not advance for skipped slots.
                continue;
            }
            self.step_process(ix, pid);
        }
        true
    }

    /// One atomic step of process `ix`: receive ∥ query detector ∥
    /// transition + send (§2.3).
    fn step_process(&mut self, ix: usize, pid: ProcessId) {
        let n = self.queues.len();
        // Receive: the (due, id)-minimal due message, λ if none.
        let input = self.queues[ix].pop_due(self.time);
        if input.is_some() {
            self.trace.messages_delivered += 1;
        }
        if let Some(env) = &input {
            self.heard[ix] |= env.causal_past;
            if let Some(log) = &mut self.delivery_log {
                log.push(DeliveryRecord {
                    id: env.id,
                    from: env.from,
                    to: env.to,
                    sent_at: env.sent_at,
                    delivered_at: self.time,
                });
            }
        }
        let suspects = *self.oracle.value(pid, self.time);
        let mut ctx: StepContext<A::Msg, A::Output> = StepContext::from_buffers(
            pid,
            n,
            suspects,
            std::mem::take(&mut self.outbox_scratch),
            std::mem::take(&mut self.outputs_scratch),
        );
        self.automata[ix].on_step(input.as_ref(), &mut ctx);
        // Effects: sends...
        let causal = self.heard[ix];
        let StepContext {
            mut outbox,
            mut outputs,
            ..
        } = ctx;
        for (to, payload) in outbox.drain(..) {
            let delay = self
                .rng
                .gen_range(self.config.delivery.min_delay..=self.config.delivery.max_delay);
            let mut due = self.time.advance(delay.max(1));
            if let Some(earliest) = self.config.adversary.earliest(pid, to) {
                due = due.max(earliest);
            }
            self.queues[to.index()].push(
                Envelope {
                    id: self.next_msg_id,
                    from: pid,
                    to,
                    payload,
                    sent_at: self.time,
                    causal_past: causal,
                },
                due,
            );
            self.next_msg_id += 1;
            self.trace.messages_sent += 1;
        }
        // ...outputs...
        for value in outputs.drain(..) {
            self.trace.events.push(OutputEvent {
                process: pid,
                time: self.time,
                value,
                causal_past: causal,
            });
        }
        // Return the (now empty) effect buffers for the next step.
        self.outbox_scratch = outbox;
        self.outputs_scratch = outputs;
        // ...and the emulated detector output.
        if let Some(suspected) = self.automata[ix].emulated_suspects() {
            let h = self
                .emulated
                .get_or_insert_with(|| History::new(n, ProcessSet::empty()));
            h.set_from(pid, self.time, suspected);
        }
        self.trace.steps += 1;
        self.time = self.time.next();
    }

    /// Drives rounds until the budget runs out, the configured
    /// [`StopCondition`] fires, or `stop` returns `true` (checked after
    /// each round).
    pub fn run_until<F: FnMut(&Self) -> bool>(mut self, mut stop: F) -> RunResult<A> {
        while self.step_round() {
            if self.stop_condition_met() || stop(&self) {
                break;
            }
        }
        self.finish()
    }

    /// Finalizes the run and returns the result.
    #[must_use]
    pub fn finish(mut self) -> RunResult<A> {
        self.trace.end_time = self.time;
        RunResult {
            trace: self.trace,
            emulated: self.emulated,
            automata: self.automata,
        }
    }
}

impl<A: Automaton> std::fmt::Debug for Scheduler<'_, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("time", &self.time)
            .field("rounds", &self.trace.rounds)
            .field("steps", &self.trace.steps)
            .field("max_rounds", &self.config.max_rounds)
            .finish()
    }
}

/// Executes a run of `automata` (one per process) under `pattern`,
/// feeding failure detector values from `oracle_history`, to completion
/// under `config`'s round budget and stop condition.
///
/// # Panics
///
/// Panics if the number of automata differs from the pattern's process
/// count, or if the oracle history covers fewer processes.
pub fn run<A: Automaton>(
    pattern: &FailurePattern,
    oracle_history: &History<ProcessSet>,
    automata: Vec<A>,
    config: &SimConfig,
) -> RunResult<A> {
    Scheduler::new(pattern, oracle_history, automata, config).run_until(|_| false)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every process broadcasts a token once, then outputs each received
    /// token's sender index.
    struct Gossip {
        started: bool,
    }

    impl Automaton for Gossip {
        type Msg = usize;
        type Output = usize;

        fn on_step(
            &mut self,
            input: Option<&Envelope<usize>>,
            ctx: &mut StepContext<usize, usize>,
        ) {
            if !self.started {
                self.started = true;
                ctx.broadcast_others(ctx.me().index());
            }
            if let Some(env) = input {
                ctx.output(env.payload);
            }
        }
    }

    fn gossip_automata(n: usize) -> Vec<Gossip> {
        (0..n).map(|_| Gossip { started: false }).collect()
    }

    fn silent_history(n: usize) -> History<ProcessSet> {
        History::new(n, ProcessSet::empty())
    }

    #[test]
    fn all_messages_delivered_to_correct_processes() {
        let n = 4;
        let pattern = FailurePattern::new(n);
        let config = SimConfig::new(7, 200);
        let result = run(&pattern, &silent_history(n), gossip_automata(n), &config);
        // 4 broadcasts × 3 destinations.
        assert_eq!(result.trace.messages_sent, 12);
        assert_eq!(result.trace.messages_delivered, 12);
        // Each process outputs the 3 tokens it received.
        for ix in 0..n {
            assert_eq!(result.trace.outputs_of(ProcessId::new(ix)).count(), 3);
        }
    }

    #[test]
    fn crashed_process_takes_no_steps_after_crash() {
        let n = 3;
        // p0 crashes immediately: it never gets a step.
        let pattern = FailurePattern::new(n).with_crash(ProcessId::new(0), Time::ZERO);
        let config = SimConfig::new(3, 100);
        let result = run(&pattern, &silent_history(n), gossip_automata(n), &config);
        // p0 sent nothing; p1 and p2 each broadcast 2 messages, and the
        // copy addressed to p0 is never delivered.
        assert_eq!(result.trace.messages_sent, 4);
        assert_eq!(result.trace.messages_delivered, 2);
        assert_eq!(result.trace.outputs_of(ProcessId::new(0)).count(), 0);
    }

    #[test]
    fn causal_past_propagates_transitively() {
        /// p0 sends to p1; p1 forwards to p2; p2 outputs. p2's event must
        /// have p0 in its causal past.
        struct Chain {
            sent: bool,
        }
        impl Automaton for Chain {
            type Msg = u8;
            type Output = u8;
            fn on_step(&mut self, input: Option<&Envelope<u8>>, ctx: &mut StepContext<u8, u8>) {
                let me = ctx.me().index();
                if me == 0 && !self.sent {
                    self.sent = true;
                    ctx.send(ProcessId::new(1), 1);
                }
                if let Some(env) = input {
                    if me == 1 && !self.sent {
                        self.sent = true;
                        ctx.send(ProcessId::new(2), env.payload + 1);
                    }
                    if me == 2 {
                        ctx.output(env.payload);
                    }
                }
            }
        }
        let pattern = FailurePattern::new(3);
        let config = SimConfig::new(11, 300);
        let automata = (0..3).map(|_| Chain { sent: false }).collect();
        let result = run(&pattern, &silent_history(3), automata, &config);
        let ev = result
            .trace
            .outputs_of(ProcessId::new(2))
            .next()
            .expect("p2 must output");
        assert!(ev.causal_past.contains(ProcessId::new(0)));
        assert!(ev.causal_past.contains(ProcessId::new(1)));
        assert!(ev.causal_past.contains(ProcessId::new(2)));
    }

    #[test]
    fn adversary_postpones_delivery() {
        let n = 2;
        let pattern = FailurePattern::new(n);
        let config = SimConfig::new(5, 400)
            .with_adversary(Adversary::HoldFrom(ProcessId::new(0), Time::new(300)));
        let result = run(&pattern, &silent_history(n), gossip_automata(n), &config);
        // p1's token to p0 arrives promptly; p0's token to p1 is held
        // until t=300.
        let p1_rx = result
            .trace
            .outputs_of(ProcessId::new(1))
            .next()
            .expect("p1 eventually receives");
        assert!(p1_rx.time >= Time::new(300));
        let p0_rx = result
            .trace
            .outputs_of(ProcessId::new(0))
            .next()
            .expect("p0 receives");
        assert!(p0_rx.time < Time::new(300));
    }

    #[test]
    fn early_stop_condition_halts_run() {
        let n = 3;
        let pattern = FailurePattern::new(n);
        let budget = SimConfig::new(9, 10_000).with_stop(StopCondition::EachCorrectOutput(1));
        let result = run(&pattern, &silent_history(n), gossip_automata(n), &budget);
        assert!(result.trace.rounds < 10_000, "should stop early");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let n = 4;
        let pattern = FailurePattern::new(n).with_crash(ProcessId::new(3), Time::new(5));
        let config = SimConfig::new(123, 100);
        let a = run(&pattern, &silent_history(n), gossip_automata(n), &config);
        let b = run(&pattern, &silent_history(n), gossip_automata(n), &config);
        assert_eq!(a.trace.messages_sent, b.trace.messages_sent);
        assert_eq!(a.trace.steps, b.trace.steps);
        assert_eq!(a.trace.events.len(), b.trace.events.len());
        for (x, y) in a.trace.events.iter().zip(&b.trace.events) {
            assert_eq!(x.process, y.process);
            assert_eq!(x.time, y.time);
        }
    }

    #[test]
    fn manual_scheduler_driving_matches_run() {
        let n = 4;
        let pattern = FailurePattern::new(n);
        let config = SimConfig::new(21, 150);
        let via_run = run(&pattern, &silent_history(n), gossip_automata(n), &config);
        let silent = silent_history(n);
        let mut s = Scheduler::new(&pattern, &silent, gossip_automata(n), &config);
        while s.step_round() {}
        let manual = s.finish();
        assert_eq!(via_run.trace.steps, manual.trace.steps);
        assert_eq!(via_run.trace.messages_sent, manual.trace.messages_sent);
        assert_eq!(via_run.trace.events.len(), manual.trace.events.len());
        assert_eq!(via_run.trace.end_time, manual.trace.end_time);
    }

    #[test]
    fn run_until_predicate_stops_early() {
        let n = 3;
        let pattern = FailurePattern::new(n);
        let config = SimConfig::new(2, 10_000);
        let result = Scheduler::new(&pattern, &silent_history(n), gossip_automata(n), &config)
            .run_until(|s| s.trace().messages_delivered >= 2);
        assert!(
            result.trace.rounds < 10_000,
            "predicate should stop the run"
        );
        assert!(result.trace.messages_delivered >= 2);
    }

    #[test]
    fn ticks_for_rounds_saturates_at_u64_max() {
        // Regression: the horizon helper must saturate, not overflow, at
        // the extremes of the round budget.
        assert_eq!(ticks_for_rounds(4, u64::MAX), Time::MAX);
        assert_eq!(ticks_for_rounds(128, u64::MAX), Time::MAX);
        assert_eq!(ticks_for_rounds(1, u64::MAX), Time::MAX);
        assert_eq!(ticks_for_rounds(3, 0), Time::new(1));
        assert_eq!(ticks_for_rounds(2, 5), Time::new(11));
    }
}
