//! Parallel multi-seed simulation campaigns.
//!
//! Every experiment in this reproduction has the same outer shape: run
//! the same scenario under `k` seeds and fold the per-seed results into
//! a statistic. The bench experiments E1–E10 and the heavier property
//! tests used to hand-roll that loop serially; [`Campaign`] centralizes
//! it and fans the seeds out over `std::thread::scope` workers.
//!
//! Two entry points:
//!
//! * [`Campaign::run`] — the simulation-shaped sweep: a `plan` closure
//!   builds a [`RunPlan`] (pattern + oracle history + automata fleet)
//!   per seed, the engine executes it, and a `collect` closure reduces
//!   each [`RunResult`]. Results come back **in seed order**, so a
//!   campaign's output is independent of worker interleaving.
//! * [`Campaign::map`] — the generic sweep for experiments whose
//!   per-seed work is not an engine run (oracle classification, QoS
//!   evaluation, membership scenarios).
//!
//! Per-seed randomness: a sequential loop could thread one RNG through
//! all seeds, which serializes the sweep. [`seed_rng`] instead derives
//! an independent deterministic RNG from `(stream, seed)`, so any seed's
//! work is reproducible in isolation — the property that makes the sweep
//! parallel *and* the results stable under any worker count.
//!
//! ```
//! use rfd_core::{FailurePattern, History, ProcessSet, Time};
//! use rfd_sim::{campaign::{seed_rng, Campaign, RunPlan}, Automaton, Envelope, SimConfig, StepContext};
//!
//! struct Ping { sent: bool }
//! impl Automaton for Ping {
//!     type Msg = ();
//!     type Output = ();
//!     fn on_step(&mut self, _: Option<&Envelope<()>>, ctx: &mut StepContext<(), ()>) {
//!         if !self.sent { self.sent = true; ctx.broadcast_others(()); }
//!     }
//! }
//!
//! let n = 3;
//! let sent: Vec<u64> = Campaign::new(SimConfig::new(0, 50))
//!     .seeds(0..4)
//!     .run(
//!         |_seed, config| RunPlan {
//!             pattern: FailurePattern::new(n),
//!             oracle: History::new(n, ProcessSet::empty()),
//!             automata: (0..n).map(|_| Ping { sent: false }).collect(),
//!             config,
//!         },
//!         |_seed, _pattern, result| result.trace.messages_sent,
//!     );
//! assert_eq!(sent, vec![6, 6, 6, 6]);
//! ```

use crate::automaton::Automaton;
use crate::engine::{run, RunResult, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfd_core::{FailurePattern, History, ProcessSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Everything the engine needs for one seed's run.
pub struct RunPlan<A: Automaton> {
    /// The failure pattern of this run.
    pub pattern: FailurePattern,
    /// The oracle history feeding the detector modules.
    pub oracle: History<ProcessSet>,
    /// One automaton per process.
    pub automata: Vec<A>,
    /// The engine configuration (normally the campaign base with the
    /// seed substituted — what the `plan` closure receives).
    pub config: SimConfig,
}

impl<A: Automaton + std::fmt::Debug> std::fmt::Debug for RunPlan<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunPlan")
            .field("pattern", &self.pattern)
            .field("config", &self.config)
            .finish()
    }
}

/// A multi-seed sweep over one scenario.
///
/// # Examples
///
/// The [`Campaign::map`] path — any per-seed computation, fanned out
/// over scoped worker threads, results returned in seed order:
///
/// ```
/// use rfd_sim::Campaign;
///
/// let squares: Vec<u64> = Campaign::sweep(0..4).map(|seed| seed * seed);
/// assert_eq!(squares, vec![0, 1, 4, 9]);
/// ```
///
/// The [`Campaign::run`] path (full engine executions per seed) is shown
/// in the [module docs](self).
#[derive(Clone, Debug)]
pub struct Campaign {
    base: SimConfig,
    seeds: Vec<u64>,
    threads: Option<usize>,
}

impl Campaign {
    /// A campaign over `base`; the seed field of `base` is replaced per
    /// sweep element.
    #[must_use]
    pub fn new(base: SimConfig) -> Self {
        Self {
            base,
            seeds: Vec::new(),
            threads: None,
        }
    }

    /// A campaign for [`Campaign::map`]-style sweeps that never touch the
    /// engine (oracle classification, QoS scenarios, …): just the seed
    /// list, no base configuration.
    #[must_use]
    pub fn sweep<I: IntoIterator<Item = u64>>(seeds: I) -> Self {
        Self::new(SimConfig::new(0, 0)).seeds(seeds)
    }

    /// Sets the seed sweep (builder style).
    #[must_use]
    pub fn seeds<I: IntoIterator<Item = u64>>(mut self, seeds: I) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Caps the worker count (builder style). Defaults to the machine's
    /// available parallelism.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The seeds of this campaign.
    #[must_use]
    pub fn seed_list(&self) -> &[u64] {
        &self.seeds
    }

    /// The worker count a sweep of `jobs` jobs would use: the explicit
    /// [`Campaign::threads`] value if set, else the `RFD_CAMPAIGN_THREADS`
    /// environment variable, else the machine's available parallelism —
    /// always clamped to the job count.
    #[must_use]
    pub fn effective_threads(&self, jobs: usize) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let configured = self.threads.or_else(|| {
            std::env::var("RFD_CAMPAIGN_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
        });
        configured.unwrap_or(hw).clamp(1, jobs.max(1))
    }

    /// Runs `job` once per seed on a worker pool and returns the results
    /// in seed order.
    pub fn map<T, F>(&self, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
    {
        let workers = self.effective_threads(self.seeds.len());
        if workers <= 1 {
            return self.seeds.iter().map(|&seed| job(seed)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = self.seeds.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let ix = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&seed) = self.seeds.get(ix) else {
                        break;
                    };
                    let out = job(seed);
                    *slots[ix]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("every sweep slot is filled by a worker")
            })
            .collect()
    }

    /// Runs one engine execution per seed — `plan` builds the run from
    /// the seed and the seed-substituted base configuration, `collect`
    /// reduces its result (receiving the run's failure pattern, which
    /// most verdicts need) — and returns the collected values in seed
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the base configuration has a zero round budget — the
    /// signature of a campaign built with [`Campaign::sweep`] (meant for
    /// [`Campaign::map`]-only use), whose engine runs would all silently
    /// execute nothing.
    pub fn run<A, T, P, F>(&self, plan: P, collect: F) -> Vec<T>
    where
        A: Automaton,
        T: Send,
        P: Fn(u64, SimConfig) -> RunPlan<A> + Sync,
        F: Fn(u64, &FailurePattern, RunResult<A>) -> T + Sync,
    {
        assert!(
            self.base.max_rounds > 0,
            "Campaign::run with max_rounds == 0 would execute nothing; \
             sweep-only campaigns (Campaign::sweep) must use map()"
        );
        self.map(|seed| {
            let p = plan(seed, self.base.clone().with_seed(seed));
            let result = run(&p.pattern, &p.oracle, p.automata, &p.config);
            collect(seed, &p.pattern, result)
        })
    }
}

/// Derives the independent deterministic RNG for one seed of one stream
/// (use a distinct `stream` tag per experiment/sweep).
#[must_use]
pub fn seed_rng(stream: u64, seed: u64) -> StdRng {
    // SplitMix64 over the pair; the engine's own seeding is unrelated, so
    // plan-level draws (e.g. random failure patterns) stay decorrelated
    // from scheduling draws.
    let mut x = stream
        .rotate_left(17)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seed);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    StdRng::seed_from_u64(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::StepContext;
    use crate::engine::StopCondition;
    use crate::message::Envelope;
    use rfd_core::{ProcessId, Time};

    struct Gossip {
        started: bool,
    }

    impl Automaton for Gossip {
        type Msg = usize;
        type Output = usize;

        fn on_step(
            &mut self,
            input: Option<&Envelope<usize>>,
            ctx: &mut StepContext<usize, usize>,
        ) {
            if !self.started {
                self.started = true;
                ctx.broadcast_others(ctx.me().index());
            }
            if let Some(env) = input {
                ctx.output(env.payload);
            }
        }
    }

    fn plan(n: usize, seed: u64, config: SimConfig) -> RunPlan<Gossip> {
        let mut rng = seed_rng(0xCAFE, seed);
        RunPlan {
            pattern: FailurePattern::random(n, n - 1, Time::new(100), &mut rng),
            oracle: History::new(n, ProcessSet::empty()),
            automata: (0..n).map(|_| Gossip { started: false }).collect(),
            config,
        }
    }

    #[test]
    fn results_come_back_in_seed_order_regardless_of_workers() {
        let base = SimConfig::new(0, 300).with_stop(StopCondition::EachCorrectOutput(1));
        let serial: Vec<(u64, u64)> = Campaign::new(base.clone()).seeds(0..12).threads(1).run(
            |s, c| plan(5, s, c),
            |seed, _p, r| (seed, r.trace.messages_sent),
        );
        let parallel: Vec<(u64, u64)> = Campaign::new(base).seeds(0..12).threads(4).run(
            |s, c| plan(5, s, c),
            |seed, _p, r| (seed, r.trace.messages_sent),
        );
        assert_eq!(serial, parallel);
        let seeds: Vec<u64> = serial.iter().map(|(s, _)| *s).collect();
        assert_eq!(seeds, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn map_runs_every_seed_exactly_once() {
        let hits: Vec<u64> = Campaign::new(SimConfig::new(0, 1))
            .seeds([3, 1, 4, 1, 5])
            .threads(3)
            .map(|seed| seed * 10);
        assert_eq!(hits, vec![30, 10, 40, 10, 50]);
    }

    #[test]
    fn empty_campaign_is_empty() {
        let out: Vec<u64> = Campaign::new(SimConfig::new(0, 1)).map(|s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn seed_rng_is_deterministic_and_stream_separated() {
        use rand::RngCore;
        assert_eq!(seed_rng(1, 2).next_u64(), seed_rng(1, 2).next_u64());
        assert_ne!(seed_rng(1, 2).next_u64(), seed_rng(1, 3).next_u64());
        assert_ne!(seed_rng(1, 2).next_u64(), seed_rng(2, 2).next_u64());
    }

    #[test]
    fn base_seed_is_substituted_per_sweep_element() {
        let base = SimConfig::new(999, 50);
        let seeds_seen: Vec<u64> = Campaign::new(base).seeds(5..8).run(
            |_s, c| RunPlan {
                pattern: FailurePattern::new(2),
                oracle: History::new(2, ProcessSet::empty()),
                automata: vec![Gossip { started: false }, Gossip { started: false }],
                config: c.clone(),
            },
            |seed, _p, _r| seed,
        );
        assert_eq!(seeds_seen, vec![5, 6, 7]);
        let _ = ProcessId::new(0);
    }
}
