//! Run traces: output events with causal metadata, and run statistics.

use core::fmt;
use rfd_core::{FailurePattern, ProcessId, ProcessSet, Time};

/// An output event (e.g. a consensus decision) recorded during a run,
/// together with the causal metadata needed by the paper's arguments.
#[derive(Clone, Debug)]
pub struct OutputEvent<O> {
    /// The process that produced the output.
    pub process: ProcessId,
    /// Global time of the step.
    pub time: Time,
    /// The output value.
    pub value: O,
    /// The causal past of the event: processes with a message in the
    /// causal chain of this event (includes the process itself). This is
    /// what Lemma 4.1's totality condition quantifies over.
    pub causal_past: ProcessSet,
}

/// Violation witness returned by [`Trace::check_totality`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TotalityViolation {
    /// The deciding process.
    pub process: ProcessId,
    /// When the decision happened.
    pub time: Time,
    /// The non-crashed processes missing from the causal chain.
    pub missing: ProcessSet,
}

impl fmt::Display for TotalityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "non-total decision: {} decided at {} without consulting {}",
            self.process, self.time, self.missing
        )
    }
}

/// The recorded trace of a simulated run.
#[derive(Clone, Debug)]
pub struct Trace<O> {
    /// All output events, in step order.
    pub events: Vec<OutputEvent<O>>,
    /// Total number of messages sent.
    pub messages_sent: u64,
    /// Total number of messages delivered.
    pub messages_delivered: u64,
    /// Total steps executed (by all processes).
    pub steps: u64,
    /// Global time when the run stopped.
    pub end_time: Time,
    /// Rounds executed by the engine.
    pub rounds: u64,
}

impl<O: Clone> Trace<O> {
    /// The first output of each process, keyed by process index. Events
    /// from processes outside `0..n` are ignored rather than panicking —
    /// traces can carry events from a wider system than the slice a
    /// caller asks about.
    #[must_use]
    pub fn first_outputs(&self, n: usize) -> Vec<Option<&OutputEvent<O>>> {
        let mut firsts: Vec<Option<&OutputEvent<O>>> = vec![None; n];
        for ev in &self.events {
            if let Some(slot) = firsts.get_mut(ev.process.index()) {
                if slot.is_none() {
                    *slot = Some(ev);
                }
            }
        }
        firsts
    }

    /// Events produced by one process, in order.
    pub fn outputs_of(&self, pid: ProcessId) -> impl Iterator<Item = &OutputEvent<O>> + '_ {
        self.events.iter().filter(move |e| e.process == pid)
    }

    /// Checks the paper's **totality** condition (§4.2) on every event:
    /// the causal chain of a decision at time `t` must contain a message
    /// from every process that has not crashed by `t`.
    ///
    /// Returns the first violation, if any.
    pub fn check_totality(&self, pattern: &FailurePattern) -> Result<(), TotalityViolation> {
        let n = pattern.num_processes();
        for ev in &self.events {
            let not_crashed = pattern.crashed_at(ev.time).complement_within(n);
            let missing = not_crashed.difference(ev.causal_past);
            if !missing.is_empty() {
                return Err(TotalityViolation {
                    process: ev.process,
                    time: ev.time,
                    missing,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn trace_with(events: Vec<OutputEvent<u32>>) -> Trace<u32> {
        Trace {
            events,
            messages_sent: 0,
            messages_delivered: 0,
            steps: 0,
            end_time: Time::new(100),
            rounds: 0,
        }
    }

    #[test]
    fn totality_holds_when_causal_past_covers_survivors() {
        let pattern = FailurePattern::new(3).with_crash(p(2), Time::new(5));
        let mut causal = ProcessSet::empty();
        causal.insert(p(0));
        causal.insert(p(1));
        let trace = trace_with(vec![OutputEvent {
            process: p(0),
            time: Time::new(10),
            value: 1,
            causal_past: causal,
        }]);
        assert_eq!(trace.check_totality(&pattern), Ok(()));
    }

    #[test]
    fn totality_fails_when_a_survivor_was_not_consulted() {
        let pattern = FailurePattern::new(3);
        let trace = trace_with(vec![OutputEvent {
            process: p(0),
            time: Time::new(10),
            value: 1,
            causal_past: ProcessSet::singleton(p(0)),
        }]);
        let v = trace.check_totality(&pattern).unwrap_err();
        assert_eq!(v.process, p(0));
        assert_eq!(v.missing.len(), 2);
    }

    #[test]
    fn crashed_processes_need_not_be_consulted() {
        // p1 crashed before the decision: consulting p0 alone violates
        // totality only because of p2.
        let pattern = FailurePattern::new(3).with_crash(p(1), Time::new(2));
        let trace = trace_with(vec![OutputEvent {
            process: p(0),
            time: Time::new(10),
            value: 1,
            causal_past: ProcessSet::singleton(p(0)),
        }]);
        let v = trace.check_totality(&pattern).unwrap_err();
        assert_eq!(v.missing, ProcessSet::singleton(p(2)));
    }

    /// Regression: an event whose process index is at or beyond `n` used
    /// to panic with an out-of-bounds index; it must be skipped.
    #[test]
    fn first_outputs_ignores_out_of_range_processes() {
        let trace = trace_with(vec![
            OutputEvent {
                process: p(5),
                time: Time::new(1),
                value: 99,
                causal_past: ProcessSet::empty(),
            },
            OutputEvent {
                process: p(0),
                time: Time::new(2),
                value: 7,
                causal_past: ProcessSet::empty(),
            },
        ]);
        let firsts = trace.first_outputs(2);
        assert_eq!(firsts.len(), 2);
        assert_eq!(firsts[0].unwrap().value, 7);
        assert!(firsts[1].is_none());
    }

    #[test]
    fn first_outputs_picks_earliest_per_process() {
        let trace = trace_with(vec![
            OutputEvent {
                process: p(1),
                time: Time::new(4),
                value: 10,
                causal_past: ProcessSet::empty(),
            },
            OutputEvent {
                process: p(1),
                time: Time::new(9),
                value: 20,
                causal_past: ProcessSet::empty(),
            },
        ]);
        let firsts = trace.first_outputs(3);
        assert!(firsts[0].is_none());
        assert_eq!(firsts[1].unwrap().value, 10);
    }
}
