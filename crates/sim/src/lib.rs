//! # rfd-sim — the FLP + failure detector execution model
//!
//! A deterministic, seeded discrete-event simulator of the asynchronous
//! computation model of *A Realistic Look At Failure Detectors* (§2):
//! processes are automata that take atomic steps
//! *(receive ∥ query detector ∥ transition + send)*; a global discrete
//! clock orders steps but is invisible to processes; crashes come from a
//! [`rfd_core::FailurePattern`]; detector values come from a pre-generated
//! oracle [`rfd_core::History`].
//!
//! Distinctive feature: the engine transparently tracks every event's
//! **causal past** — exactly the `[pᵢ is alive]` tags that the paper's
//! reduction `T_{D⇒P}` (§4.3) piggybacks on messages — so totality
//! (Lemma 4.1) is checkable on any trace, and the reduction algorithm is a
//! thin automaton on top.
//!
//! ## Example: run a tiny gossip protocol under a crash
//!
//! ```
//! use rfd_sim::{run, Automaton, Envelope, SimConfig, StepContext};
//! use rfd_core::{FailurePattern, History, ProcessId, ProcessSet, Time};
//!
//! struct Hello { greeted: bool }
//! impl Automaton for Hello {
//!     type Msg = ();
//!     type Output = ProcessId;
//!     fn on_step(&mut self, input: Option<&Envelope<()>>, ctx: &mut StepContext<(), ProcessId>) {
//!         if !self.greeted {
//!             self.greeted = true;
//!             ctx.broadcast_others(());
//!         }
//!         if let Some(env) = input {
//!             ctx.output(env.from);
//!         }
//!     }
//! }
//!
//! let n = 3;
//! let pattern = FailurePattern::new(n).with_crash(ProcessId::new(2), Time::new(1));
//! let silent = History::new(n, ProcessSet::empty());
//! let automata = (0..n).map(|_| Hello { greeted: false }).collect();
//! let result = run(&pattern, &silent, automata, &SimConfig::new(42, 50));
//! assert!(result.trace.messages_delivered <= result.trace.messages_sent);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod automaton;
pub mod campaign;
mod delivery;
mod engine;
mod message;
mod queue;
pub mod stream;
mod trace;

pub use automaton::{Automaton, StepContext};
pub use campaign::{Campaign, RunPlan};
pub use delivery::{Adversary, DeliveryModel};
pub use engine::{
    run, ticks_for_rounds, DeliveryRecord, RunResult, Scheduler, SimConfig, StopCondition,
};
pub use message::Envelope;
#[doc(hidden)]
pub use queue::take_due_linear_reference;
pub use queue::EventQueue;
pub use stream::{StreamEvent, StreamRun};
pub use trace::{OutputEvent, TotalityViolation, Trace};
