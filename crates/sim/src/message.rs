//! Messages in the simulated message buffer.

use rfd_core::{ProcessId, ProcessSet, Time};

/// A message in flight, together with the metadata the engine tracks.
///
/// Besides the algorithm payload, every envelope transparently carries the
/// sender's *causal past* — the set of processes whose messages are in the
/// causal chain (Lamport's happened-before) of the send event. This is the
/// engine-level realization of the `[pᵢ is alive]` tags that the paper's
/// reduction `T_{D⇒P}` attaches to every message (§4.3): a process is in
/// `causal_past` exactly when the information "*that process was alive*"
/// has reached the sender.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Unique, monotonically increasing message identifier.
    pub id: u64,
    /// Sending process.
    pub from: ProcessId,
    /// Destination process.
    pub to: ProcessId,
    /// Algorithm payload.
    pub payload: M,
    /// Global time of the send step.
    pub sent_at: Time,
    /// Causal past of the send event (always contains `from`).
    pub causal_past: ProcessSet,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_carries_causal_past() {
        let e = Envelope {
            id: 1,
            from: ProcessId::new(0),
            to: ProcessId::new(1),
            payload: "hi",
            sent_at: Time::new(3),
            causal_past: ProcessSet::singleton(ProcessId::new(0)),
        };
        assert!(e.causal_past.contains(e.from));
    }
}
