//! The per-process delivery queue: a binary heap ordered by `(due, id)`.
//!
//! The engine formerly kept each process's in-flight messages in a plain
//! `Vec` and re-scanned it linearly on every receive step — O(inbox) per
//! delivery, O(inbox²) per drained inbox. [`EventQueue`] replaces that
//! scan with a min-heap keyed on `(due, id)`.
//!
//! **Order preservation.** The old scan removed the envelope minimizing
//! `(due, id)` among those with `due ≤ now`. The heap's global minimum is
//! the same envelope whenever one is eligible: the heap minimum has the
//! smallest `(due, id)` of the whole queue, so either its `due` exceeds
//! `now` (then every entry's does, and the scan would also deliver
//! nothing) or it is exactly the scan's pick. Delivery order — and with
//! it every deterministic trace — is bit-for-bit identical; the
//! equivalence is property-tested against a reference linear scan in
//! `tests/prop_queue.rs`.

use crate::message::Envelope;
use rfd_core::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pending message with its earliest delivery time.
struct Entry<M> {
    due: Time,
    envelope: Envelope<M>,
}

impl<M> Entry<M> {
    /// The heap key; `id` is unique per engine run, so ties cannot occur
    /// between distinct messages.
    fn key(&self) -> (Time, u64) {
        (self.due, self.envelope.id)
    }
}

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<M> Eq for Entry<M> {}

impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: `BinaryHeap` is a max-heap, we want the earliest
        // `(due, id)` on top.
        other.key().cmp(&self.key())
    }
}

/// A process's delivery queue, ordered by `(due, id)`.
pub struct EventQueue<M> {
    heap: BinaryHeap<Entry<M>>,
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
        }
    }

    /// Enqueues `envelope` for delivery no earlier than `due`.
    pub fn push(&mut self, envelope: Envelope<M>, due: Time) {
        self.heap.push(Entry { due, envelope });
    }

    /// Removes and returns the `(due, id)`-minimal envelope whose due
    /// time has been reached, or `None` if nothing is deliverable at
    /// `now`.
    pub fn pop_due(&mut self, now: Time) -> Option<Envelope<M>> {
        if matches!(self.heap.peek(), Some(entry) if entry.due <= now) {
            self.heap.pop().map(|entry| entry.envelope)
        } else {
            None
        }
    }

    /// The earliest due time in the queue, if any.
    #[must_use]
    pub fn next_due(&self) -> Option<Time> {
        self.heap.peek().map(|entry| entry.due)
    }

    /// Number of queued messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> std::fmt::Debug for EventQueue<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_due", &self.next_due())
            .finish()
    }
}

/// The engine's **pre-refactor** delivery rule, verbatim: scan the whole
/// inbox and remove the `(due, id)`-minimal entry among those with
/// `due <= now`.
///
/// Kept as the single canonical baseline that the property tests
/// (`tests/prop_queue.rs`) and the `event_queue_drain` microbenchmark
/// pin [`EventQueue`] against; not part of the supported API.
#[doc(hidden)]
pub fn take_due_linear_reference<M>(
    inbox: &mut Vec<(Envelope<M>, Time)>,
    now: Time,
) -> Option<Envelope<M>> {
    let mut best: Option<usize> = None;
    for (i, (envelope, due)) in inbox.iter().enumerate() {
        if *due <= now {
            let better = match best {
                None => true,
                Some(b) => {
                    let (b_env, b_due) = &inbox[b];
                    (*due, envelope.id) < (*b_due, b_env.id)
                }
            };
            if better {
                best = Some(i);
            }
        }
    }
    best.map(|i| inbox.swap_remove(i).0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfd_core::{ProcessId, ProcessSet};

    fn env(id: u64) -> Envelope<u8> {
        Envelope {
            id,
            from: ProcessId::new(0),
            to: ProcessId::new(1),
            payload: 0,
            sent_at: Time::ZERO,
            causal_past: ProcessSet::singleton(ProcessId::new(0)),
        }
    }

    #[test]
    fn pops_in_due_then_id_order() {
        let mut q = EventQueue::new();
        q.push(env(2), Time::new(5));
        q.push(env(1), Time::new(5));
        q.push(env(0), Time::new(9));
        assert_eq!(q.pop_due(Time::new(10)).unwrap().id, 1);
        assert_eq!(q.pop_due(Time::new(10)).unwrap().id, 2);
        assert_eq!(q.pop_due(Time::new(10)).unwrap().id, 0);
        assert!(q.pop_due(Time::new(10)).is_none());
    }

    #[test]
    fn nothing_is_delivered_before_due() {
        let mut q = EventQueue::new();
        q.push(env(0), Time::new(7));
        assert!(q.pop_due(Time::new(6)).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_due(), Some(Time::new(7)));
        assert!(q.pop_due(Time::new(7)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn later_eligible_message_waits_for_earlier_key() {
        // id 5 due at 1, id 3 due at 2: at now=2 both eligible, the
        // smaller (due, id) key — (1, 5) — wins.
        let mut q = EventQueue::new();
        q.push(env(5), Time::new(1));
        q.push(env(3), Time::new(2));
        assert_eq!(q.pop_due(Time::new(2)).unwrap().id, 5);
        assert_eq!(q.pop_due(Time::new(2)).unwrap().id, 3);
    }
}
