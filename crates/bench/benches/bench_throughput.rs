//! Hot-path throughput benches: messages/sec and ns/tick for the
//! runtime's steady-state loops — detector drain, membership tick,
//! codec round-trip, service slot advance.
//!
//! This is the tracked family behind the allocation-free hot-path work:
//! `BENCH_baseline.json` holds the pre-optimization numbers,
//! `BENCH_pr6.json` the post-optimization ones, and `BENCH_pr10.json`
//! the post-retransmission-plane re-capture (the no-retry fast path
//! must stay free), captured with
//! `RFD_BENCH_JSON=<path> cargo bench -p rfd-bench --bench bench_throughput`.
//!
//! **Size semantics.** `ProcessSet` is a `u128` bitset, so fleets cap at
//! 128 processes. The `64`/`1k`/`8k` sizes of `detector_drain` and
//! `service_slot_advance` are therefore *messages per drain* and *slots
//! per advance* — the fan-in a node must absorb per poll, which is what
//! heartbeat-processing throughput is about — while `membership_tick`
//! sizes are genuine fleet sizes (4/16/64 nodes).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use rfd_algo::consensus::{RotatingConsensus, RotatingMsg};
use rfd_algo::driver::SlotDriver;
use rfd_core::{ProcessId, ProcessSet};
use rfd_net::bytes::BytesMut;
use rfd_net::clock::{Nanos, VirtualClock};
use rfd_net::codec::{decode, decode_borrowed, encode, encode_into, Heartbeat, SyncReply, WireMsg};
use rfd_net::estimator::FixedTimeout;
use rfd_net::membership::MembershipNode;
use rfd_net::transport::{InMemoryNetwork, NetworkConfig, Transport};
use rfd_net::DetectorNode;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn size_id(k: usize) -> &'static str {
    match k {
        64 => "64",
        1024 => "1k",
        8192 => "8k",
        other => unreachable!("unnamed bench size {other}"),
    }
}

/// Encode/decode round trips — the owned API and the zero-copy one
/// (`encode_into` over a reused buffer + `decode_borrowed`) side by
/// side, so the allocation-elision delta is visible in one run.
fn bench_codec_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_roundtrip");
    group.throughput(Throughput::Elements(1));
    let hb = WireMsg::Heartbeat(Heartbeat {
        sender: 3,
        seq: 99,
        sent_at: Nanos::from_millis(1234),
    });
    group.bench_function("heartbeat_owned", |b| {
        b.iter(|| {
            let payload = encode(&hb);
            decode(&payload).expect("round trip")
        });
    });
    group.bench_function("heartbeat_borrowed", |b| {
        let mut buf = BytesMut::new();
        b.iter(|| {
            encode_into(&hb, &mut buf);
            match decode_borrowed(&buf).expect("round trip") {
                rfd_net::codec::WireView::Heartbeat(view) => view.seq,
                _ => unreachable!("heartbeat decodes as heartbeat"),
            }
        });
    });
    let sync = WireMsg::SyncReply(SyncReply {
        start: 7,
        entries: (0..8).map(|i| (i, i * 2, 1u128 << i)).collect(),
    });
    group.bench_function("sync_reply_owned", |b| {
        b.iter(|| {
            let payload = encode(&sync);
            decode(&payload).expect("round trip")
        });
    });
    group.bench_function("sync_reply_borrowed", |b| {
        let mut buf = BytesMut::new();
        b.iter(|| {
            encode_into(&sync, &mut buf);
            match decode_borrowed(&buf).expect("round trip") {
                rfd_net::codec::WireView::SyncReply(view) => view.len(),
                _ => unreachable!("sync reply decodes as sync reply"),
            }
        });
    });
    group.finish();
}

/// One node absorbing a fan-in of `k` queued heartbeats in a single
/// poll: the receive-side hot path (transport drain + decode + estimator
/// observe). Setup (filling the inbox) runs outside the timed window.
fn bench_detector_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("detector_drain");
    let n = 64usize;
    for k in [64usize, 1024, 8192] {
        let clock = VirtualClock::new();
        // Fixed delay and zero loss: the RNG is never consulted, so the
        // workload is identical run to run.
        let config = NetworkConfig::reliable(Nanos::from_millis(1), Nanos::from_millis(1));
        let net = InMemoryNetwork::new(n, config, clock.clone());
        let senders: Vec<_> = (1..n).map(|ix| net.endpoint(p(ix))).collect();
        let payloads: Vec<_> = (1..n)
            .map(|ix| {
                encode(&WireMsg::Heartbeat(Heartbeat {
                    sender: ix as u16,
                    seq: 1,
                    sent_at: Nanos::ZERO,
                }))
            })
            .collect();
        // A period the run never reaches again after the first poll:
        // the bench measures the drain, not the node's own fan-out.
        let mut node = DetectorNode::new(
            n,
            FixedTimeout::new(Nanos::from_millis(100)),
            net.endpoint(p(0)),
            clock.clone(),
            Nanos::from_nanos(u64::MAX),
        );
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::new("drain", size_id(k)), &k, |b, &k| {
            b.iter_batched(
                || {
                    for j in 0..k {
                        let s = j % (n - 1);
                        senders[s].send(p(0), payloads[s].clone());
                    }
                    clock.advance(Nanos::from_millis(2));
                },
                |()| node.poll(),
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// A whole membership fleet advancing one heartbeat period per
/// iteration, in steady state *after* a view change — so the acting
/// coordinator re-announces its view every period, exercising the
/// multi-frame send path that heartbeat coalescing collapses.
fn bench_membership_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("membership_tick");
    for n in [4usize, 16, 64] {
        let clock = VirtualClock::new();
        let config = NetworkConfig::reliable(Nanos::from_millis(1), Nanos::from_millis(1));
        let net = InMemoryNetwork::new(n, config, clock.clone());
        let period = Nanos::from_millis(50);
        let mut nodes: Vec<_> = (0..n)
            .map(|ix| {
                MembershipNode::new(
                    n,
                    FixedTimeout::new(Nanos::from_millis(150)),
                    net.endpoint(p(ix)),
                    clock.clone(),
                    period,
                )
            })
            .collect();
        // Let everyone observe everyone (a process that never heartbeats
        // is never suspected — there is no arrival to time out against),
        // then crash the highest-index node and run until the coordinator
        // has excluded it: from here on every period carries heartbeats
        // plus a view re-announcement.
        for _ in 0..5 {
            for node in &mut nodes {
                node.poll();
            }
            clock.advance(period);
        }
        net.take_down(p(n - 1));
        for _ in 0..100 {
            if nodes[0].views_installed() >= 1 {
                break;
            }
            for node in nodes.iter_mut().take(n - 1) {
                node.poll();
            }
            clock.advance(period);
        }
        assert!(
            nodes[0].views_installed() >= 1,
            "warm-up must reach the announcing steady state"
        );
        let alive = n - 1;
        group.throughput(Throughput::Elements(alive as u64));
        group.bench_with_input(BenchmarkId::new("tick", n), &n, |b, _| {
            b.iter(|| {
                for node in nodes.iter_mut().take(alive) {
                    node.poll();
                }
                clock.advance(period);
            });
        });
    }
    group.finish();
}

/// A single-process cluster deciding `k` consecutive log slots through
/// the slot driver: open, self-delivered consensus traffic, decision
/// retirement — the storage-layer hot path of the decision service.
fn bench_service_slot_advance(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_slot_advance");
    let me = p(0);
    for k in [64u64, 1024, 8192] {
        group.throughput(Throughput::Elements(k));
        #[allow(clippy::cast_possible_truncation)]
        let id = BenchmarkId::new("advance", size_id(k as usize));
        group.bench_with_input(id, &k, |b, &k| {
            b.iter(|| {
                let mut driver: SlotDriver<RotatingConsensus<u64>> = SlotDriver::new(me, 1);
                for slot in 0..k {
                    let (sends, mut decided) = driver.open(slot, slot, ProcessSet::empty());
                    // FIFO delivery: popping LIFO would starve the
                    // round-0 ack behind the round-chasing estimates and
                    // spin each slot through the core's round cap.
                    let mut queue: std::collections::VecDeque<(ProcessId, u64, RotatingMsg<u64>)> =
                        sends.into();
                    while decided.is_none() {
                        let (_, s, msg) = queue
                            .pop_front()
                            .expect("a 1-process slot decides via self-sends");
                        let (more, d) = driver.on_message(s, me, &msg, ProcessSet::empty());
                        queue.extend(more);
                        decided = d;
                    }
                }
                driver.decision(k - 1).copied()
            });
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = configured();
    targets =
        bench_codec_roundtrip,
        bench_detector_drain,
        bench_membership_tick,
        bench_service_slot_advance
}
criterion_main!(benches);
