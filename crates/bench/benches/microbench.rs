//! Criterion microbenchmarks anchoring the performance claims in
//! EXPERIMENTS.md: oracle generation, simulator step throughput,
//! consensus decision latency, reduction instance rate, estimator costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfd_algo::consensus::{ConsensusAutomaton, FloodSetConsensus, StrongConsensus};
use rfd_algo::reduction::PerfectEmulation;
use rfd_core::oracles::{EventuallyPerfectOracle, Oracle, PerfectOracle};
use rfd_core::{FailurePattern, ProcessId, Time};
use rfd_net::clock::Nanos;
use rfd_net::estimator::{ArrivalEstimator, ChenEstimator, JacobsonEstimator, PhiAccrual};
use rfd_sim::{run, ticks_for_rounds, SimConfig, StopCondition};

fn bench_oracle_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_generation");
    for n in [8usize, 32, 128] {
        let mut rng = StdRng::seed_from_u64(1);
        let pattern = FailurePattern::random(n, n - 1, Time::new(1_000), &mut rng);
        let horizon = Time::new(10_000);
        let perfect = PerfectOracle::new(5, 3);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("perfect", n), &n, |b, _| {
            b.iter(|| perfect.generate(&pattern, horizon, 7));
        });
        let evp = EventuallyPerfectOracle::new(Time::new(500), 5, 3);
        group.bench_with_input(BenchmarkId::new("eventually_perfect", n), &n, |b, _| {
            b.iter(|| evp.generate(&pattern, horizon, 7));
        });
    }
    group.finish();
}

fn bench_simulator_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    for n in [4usize, 8, 16] {
        let pattern = FailurePattern::new(n);
        let rounds = 200u64;
        let oracle = PerfectOracle::new(6, 3);
        let history = oracle.generate(&pattern, ticks_for_rounds(n, rounds), 0);
        let props: Vec<u64> = (0..n as u64).collect();
        group.throughput(Throughput::Elements(rounds * n as u64));
        group.bench_with_input(BenchmarkId::new("floodset_run", n), &n, |b, _| {
            b.iter(|| {
                let automata = ConsensusAutomaton::<FloodSetConsensus<u64>>::fleet(&props);
                let config =
                    SimConfig::new(3, rounds).with_stop(StopCondition::EachCorrectOutput(1));
                run(&pattern, &history, automata, &config)
            });
        });
    }
    group.finish();
}

fn bench_consensus_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_decision");
    let n = 8usize;
    let pattern = FailurePattern::new(n).with_crash(ProcessId::new(0), Time::new(30));
    let rounds = 400u64;
    let oracle = PerfectOracle::new(6, 3);
    let history = oracle.generate(&pattern, ticks_for_rounds(n, rounds), 0);
    let props: Vec<u64> = (0..n as u64).collect();
    group.bench_function("floodset_one_crash", |b| {
        b.iter(|| {
            let automata = ConsensusAutomaton::<FloodSetConsensus<u64>>::fleet(&props);
            let config = SimConfig::new(5, rounds).with_stop(StopCondition::EachCorrectOutput(1));
            run(&pattern, &history, automata, &config)
        });
    });
    group.bench_function("ct_strong_one_crash", |b| {
        b.iter(|| {
            let automata = ConsensusAutomaton::<StrongConsensus<u64>>::fleet(&props);
            let config = SimConfig::new(5, rounds).with_stop(StopCondition::EachCorrectOutput(1));
            run(&pattern, &history, automata, &config)
        });
    });
    group.finish();
}

fn bench_reduction(c: &mut Criterion) {
    let n = 4usize;
    let pattern = FailurePattern::new(n);
    let rounds = 300u64;
    let oracle = PerfectOracle::new(6, 3);
    let history = oracle.generate(&pattern, ticks_for_rounds(n, rounds), 0);
    c.bench_function("reduction_300_rounds", |b| {
        b.iter(|| {
            let automata = PerfectEmulation::<FloodSetConsensus<u64>>::fleet(n);
            run(&pattern, &history, automata, &SimConfig::new(9, rounds))
        });
    });
}

fn bench_event_queue(c: &mut Criterion) {
    use rfd_core::{ProcessId, ProcessSet};
    // The pre-refactor delivery rule is the canonical baseline exported
    // (doc-hidden) by rfd_sim, shared with the prop_queue equivalence
    // tests — one reference, never two drifting copies.
    use rfd_sim::{take_due_linear_reference as take_due_linear, Envelope, EventQueue};

    fn envelope(id: u64) -> Envelope<u64> {
        Envelope {
            id,
            from: ProcessId::new(0),
            to: ProcessId::new(1),
            payload: id,
            sent_at: Time::new(0),
            causal_past: ProcessSet::singleton(ProcessId::new(0)),
        }
    }

    let mut group = c.benchmark_group("event_queue_drain");
    for size in [16u64, 128, 1024] {
        // Due times interleave so ~half the queue is always eligible —
        // the regime where the linear scan's O(inbox) per pop hurts.
        let dues: Vec<u64> = (0..size).map(|i| (i * 7919) % size).collect();
        group.throughput(Throughput::Elements(size));
        group.bench_with_input(BenchmarkId::new("heap", size), &size, |b, _| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for (id, due) in dues.iter().enumerate() {
                    q.push(envelope(id as u64), Time::new(*due));
                }
                let mut delivered = 0u64;
                while q.pop_due(Time::new(size)).is_some() {
                    delivered += 1;
                }
                delivered
            });
        });
        group.bench_with_input(BenchmarkId::new("linear_scan", size), &size, |b, _| {
            b.iter(|| {
                let mut inbox: Vec<(Envelope<u64>, Time)> = dues
                    .iter()
                    .enumerate()
                    .map(|(id, due)| (envelope(id as u64), Time::new(*due)))
                    .collect();
                let mut delivered = 0u64;
                while take_due_linear(&mut inbox, Time::new(size)).is_some() {
                    delivered += 1;
                }
                delivered
            });
        });
    }
    group.finish();
}

fn bench_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator");
    let arrivals: Vec<Nanos> = (0..1_000u64).map(|k| Nanos::from_millis(k * 100)).collect();
    group.throughput(Throughput::Elements(arrivals.len() as u64));
    group.bench_function("chen_observe_1k", |b| {
        b.iter(|| {
            let mut e = ChenEstimator::new(Nanos::from_millis(50), 32, Nanos::from_millis(500));
            for &t in &arrivals {
                e.observe(t);
            }
            e.is_suspect(Nanos::from_millis(100_500))
        });
    });
    group.bench_function("jacobson_observe_1k", |b| {
        b.iter(|| {
            let mut e = JacobsonEstimator::new(4.0, Nanos::from_millis(500));
            for &t in &arrivals {
                e.observe(t);
            }
            e.is_suspect(Nanos::from_millis(100_500))
        });
    });
    group.bench_function("phi_observe_1k_and_query", |b| {
        b.iter(|| {
            let mut e = PhiAccrual::new(3.0, 64, Nanos::from_millis(500));
            for &t in &arrivals {
                e.observe(t);
            }
            e.phi(Nanos::from_millis(100_500))
        });
    });
    group.finish();
}

fn configured() -> Criterion {
    // Keep the full suite to a few minutes: the statistics stay stable
    // at these sizes for the deterministic workloads measured here.
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets =
        bench_oracle_generation,
        bench_simulator_steps,
        bench_consensus_decision,
        bench_reduction,
        bench_event_queue,
        bench_estimators
}
criterion_main!(benches);
