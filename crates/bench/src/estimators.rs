//! A closed sum over the estimator line-up, shared by the experiments
//! that sweep heterogeneous estimators through one closure (E7's QoS
//! grid, E8's membership rows).

use rfd_net::clock::Nanos;
use rfd_net::estimator::{
    ArrivalEstimator, ChenEstimator, FixedTimeout, JacobsonEstimator, PhiAccrual,
};

/// One of the four estimator strategies, dispatching [`ArrivalEstimator`]
/// by value so a whole line-up fits in one homogeneous row table.
#[derive(Clone, Debug)]
pub enum Estimators {
    /// Static timeout.
    Fixed(FixedTimeout),
    /// Chen–Toueg–Aguilera expected arrival + margin.
    Chen(ChenEstimator),
    /// TCP-RTO-style mean + deviation.
    Jacobson(JacobsonEstimator),
    /// φ-accrual.
    Phi(PhiAccrual),
}

impl ArrivalEstimator for Estimators {
    fn name(&self) -> &'static str {
        match self {
            Estimators::Fixed(e) => e.name(),
            Estimators::Chen(e) => e.name(),
            Estimators::Jacobson(e) => e.name(),
            Estimators::Phi(e) => e.name(),
        }
    }

    fn observe(&mut self, arrival: Nanos) {
        match self {
            Estimators::Fixed(e) => e.observe(arrival),
            Estimators::Chen(e) => e.observe(arrival),
            Estimators::Jacobson(e) => e.observe(arrival),
            Estimators::Phi(e) => e.observe(arrival),
        }
    }

    fn is_suspect(&self, now: Nanos) -> bool {
        match self {
            Estimators::Fixed(e) => e.is_suspect(now),
            Estimators::Chen(e) => e.is_suspect(now),
            Estimators::Jacobson(e) => e.is_suspect(now),
            Estimators::Phi(e) => e.is_suspect(now),
        }
    }

    fn suspicion_level(&self, now: Nanos) -> f64 {
        match self {
            Estimators::Fixed(e) => e.suspicion_level(now),
            Estimators::Chen(e) => e.suspicion_level(now),
            Estimators::Jacobson(e) => e.suspicion_level(now),
            Estimators::Phi(e) => e.suspicion_level(now),
        }
    }

    fn deadline(&self) -> Option<Nanos> {
        match self {
            Estimators::Fixed(e) => e.deadline(),
            Estimators::Chen(e) => e.deadline(),
            Estimators::Jacobson(e) => e.deadline(),
            Estimators::Phi(e) => e.deadline(),
        }
    }
}
