//! E2 — Lemma 4.2 / Proposition 4.3: `T_{D⇒P}` emulates `P`.
//!
//! For each `(n, f)` we run the reduction over the flood-set total
//! consensus, check the emulated history against the Perfect class
//! predicates, and measure the emulation's detection latency (crash →
//! first emulated suspicion at a correct process) together with the
//! number of consensus instances the run completed.

use crate::table::Table;
use rfd_algo::consensus::FloodSetConsensus;
use rfd_algo::reduction::PerfectEmulation;
use rfd_core::oracles::{Oracle, PerfectOracle};
use rfd_core::properties::first_suspicion;
use rfd_core::{class_report, CheckParams, ClassId, FailurePattern, ProcessId, Time};
use rfd_sim::campaign::{Campaign, RunPlan};
use rfd_sim::{ticks_for_rounds, SimConfig};

const ROUNDS: u64 = 900;

/// Runs E2 and returns the result table.
#[must_use]
pub fn run_experiment(quick: bool) -> Table {
    let seeds = if quick { 3 } else { 10 };
    let mut table = Table::new(
        "E2 — T_{D⇒P} reduction quality (Lemma 4.2 / Prop 4.3)",
        &[
            "n",
            "f",
            "emulated class P",
            "mean detection (ticks)",
            "mean instances/run",
        ],
    );
    let oracle = PerfectOracle::new(6, 3);
    for n in [4usize, 8] {
        for f in [0usize, 1, n / 2, n - 1] {
            // Spread f crashes over the first half of the run.
            let mut pattern = FailurePattern::new(n);
            for k in 0..f {
                let at = Time::new(100 + (k as u64) * 150);
                pattern.set_crash(ProcessId::new(k), at);
            }
            let horizon = ticks_for_rounds(n, ROUNDS);
            let per_seed: Vec<(bool, Vec<u64>, u64)> = Campaign::new(SimConfig::new(0, ROUNDS))
                .seeds(0..seeds)
                .run(
                    |seed, config| RunPlan {
                        pattern: pattern.clone(),
                        oracle: oracle.generate(&pattern, horizon, seed),
                        automata: PerfectEmulation::<FloodSetConsensus<u64>>::fleet(n),
                        config,
                    },
                    |_seed, pattern, result| {
                        let emulated = result.emulated.expect("output(P) exposed");
                        let end = result.trace.end_time;
                        let params = CheckParams::with_margin(end, end.ticks() / 10);
                        let report = class_report(pattern, &emulated, &params);
                        // Detection latency of the emulation.
                        let mut latencies = Vec::new();
                        for k in 0..f {
                            let crashed = ProcessId::new(k);
                            let ct = pattern.crash_time(crashed).expect("scheduled");
                            for obs in pattern.correct() {
                                if let Some(t) = first_suspicion(&emulated, obs, crashed, end) {
                                    latencies.push(t.since(ct));
                                }
                            }
                        }
                        let instances = result
                            .automata
                            .iter()
                            .enumerate()
                            .filter(|(ix, _)| pattern.correct().contains(ProcessId::new(*ix)))
                            .map(|(_, a)| a.decisions())
                            .min()
                            .unwrap_or(0);
                        (report.is_in(ClassId::Perfect), latencies, instances)
                    },
                );
            let perfect_count = per_seed.iter().filter(|(p, _, _)| *p).count();
            let latencies: Vec<u64> = per_seed
                .iter()
                .flat_map(|(_, l, _)| l.iter().copied())
                .collect();
            let instances: Vec<u64> = per_seed.iter().map(|(_, _, i)| *i).collect();
            let mean_latency = if latencies.is_empty() {
                "n/a".to_string()
            } else {
                format!(
                    "{:.0}",
                    latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
                )
            };
            let mean_instances = format!(
                "{:.1}",
                instances.iter().sum::<u64>() as f64 / instances.len().max(1) as f64
            );
            table.push(vec![
                n.to_string(),
                f.to_string(),
                format!("{perfect_count}/{seeds}"),
                mean_latency,
                mean_instances,
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_emulation_is_always_perfect() {
        let table = run_experiment(true);
        let text = table.render();
        assert_eq!(table.len(), 8);
        for line in text.lines().filter(|l| l.contains("3/3")) {
            let _ = line;
        }
        // Every row must report 3/3 perfect emulations.
        let data_rows: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("| 4") || l.starts_with("| 8"))
            .collect();
        assert_eq!(data_rows.len(), 8);
        for l in data_rows {
            assert!(l.contains("3/3"), "emulation must be Perfect: {l}");
        }
    }
}
