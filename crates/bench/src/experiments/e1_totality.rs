//! E1 — Lemma 4.1: totality of consensus with realistic detectors.
//!
//! For each algorithm and system size, we run seeded consensus executions
//! under random crash patterns and report (a) how often every correct
//! process decided and (b) how often every decision was *total* (its
//! causal chain covered every non-crashed process). The realistic-`P`
//! algorithms must be 100 % total; the `◇S` baseline — run with a
//! delayed-but-correct straggler, Lemma 4.1's run `R₁` — must exhibit
//! non-total decisions.

use crate::table::{pct, Table};
use rfd_algo::check::check_consensus;
use rfd_algo::consensus::{
    ConsensusAutomaton, ConsensusCore, FloodSetConsensus, RotatingConsensus, StrongConsensus,
};
use rfd_core::oracles::{EventuallyStrongOracle, Oracle, PerfectOracle};
use rfd_core::{FailurePattern, ProcessId, Time};
use rfd_sim::{run, ticks_for_rounds, Adversary, SimConfig, StopCondition};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROUNDS: u64 = 600;

struct Outcome {
    terminated: usize,
    total: usize,
    decided_runs: usize,
    runs: usize,
}

fn sweep<C: ConsensusCore<Val = u64>>(
    n: usize,
    oracle_history: impl Fn(&FailurePattern, u64) -> rfd_core::History<rfd_core::ProcessSet>,
    adversary: Adversary,
    max_faulty: usize,
    seeds: u64,
    rng: &mut StdRng,
) -> Outcome {
    let props: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
    let mut outcome = Outcome {
        terminated: 0,
        total: 0,
        decided_runs: 0,
        runs: seeds as usize,
    };
    for seed in 0..seeds {
        let pattern = FailurePattern::random(n, max_faulty, Time::new(ROUNDS), rng);
        let history = oracle_history(&pattern, seed);
        let automata = ConsensusAutomaton::<C>::fleet(&props);
        let config = SimConfig::new(seed, ROUNDS)
            .with_adversary(adversary.clone())
            .with_stop(StopCondition::EachCorrectOutput(1));
        let result = run(&pattern, &history, automata, &config);
        let verdict = check_consensus(&pattern, &result.trace, &props);
        if verdict.termination.is_ok() {
            outcome.terminated += 1;
        }
        if !result.trace.events.is_empty() {
            outcome.decided_runs += 1;
            if result.trace.check_totality(&pattern).is_ok() {
                outcome.total += 1;
            }
        }
    }
    outcome
}

/// Runs E1 and returns the result table.
#[must_use]
pub fn run_experiment(quick: bool) -> Table {
    let seeds = if quick { 10 } else { 40 };
    let mut table = Table::new(
        "E1 — totality of consensus decisions (Lemma 4.1)",
        &["algorithm", "detector", "n", "adversary", "terminated", "total decisions"],
    );
    let mut rng = StdRng::seed_from_u64(0xE1);
    let perfect = PerfectOracle::new(6, 3);
    let evs = EventuallyStrongOracle::new(8);
    for n in [4usize, 8] {
        let horizon = ticks_for_rounds(n, ROUNDS);
        let o = sweep::<FloodSetConsensus<u64>>(
            n,
            |p, s| perfect.generate(p, horizon, s),
            Adversary::None,
            n - 1,
            seeds,
            &mut rng,
        );
        table.push(vec![
            "floodset".into(),
            "P".into(),
            n.to_string(),
            "none".into(),
            pct(o.terminated, o.runs),
            pct(o.total, o.decided_runs),
        ]);
        let o = sweep::<StrongConsensus<u64>>(
            n,
            |p, s| perfect.generate(p, horizon, s),
            Adversary::None,
            n - 1,
            seeds,
            &mut rng,
        );
        table.push(vec![
            "ct-strong".into(),
            "S∩R (=P)".into(),
            n.to_string(),
            "none".into(),
            pct(o.terminated, o.runs),
            pct(o.total, o.decided_runs),
        ]);
        // ◇S baseline under Lemma 4.1's run R₁: a correct process whose
        // messages are delayed past the decision. Failure-free so the
        // majority requirement holds.
        let straggler = ProcessId::new(n - 1);
        let o = sweep::<RotatingConsensus<u64>>(
            n,
            |p, s| evs.generate(p, horizon, s),
            Adversary::HoldFrom(straggler, horizon),
            0,
            seeds,
            &mut rng,
        );
        table.push(vec![
            "ct-rotating".into(),
            "◇S".into(),
            n.to_string(),
            format!("hold p{}", n - 1),
            pct(o.terminated, o.runs),
            pct(o.total, o.decided_runs),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_shape_matches_the_lemma() {
        let table = run_experiment(true);
        let text = table.render();
        // Realistic-detector algorithms: 100% total. ◇S baseline: 0%
        // total under the straggler adversary (it decides without p_{n-1}).
        assert_eq!(table.len(), 6);
        let lines: Vec<&str> = text.lines().filter(|l| l.contains("floodset") || l.contains("ct-strong")).collect();
        for l in &lines {
            assert!(l.contains("100.0%"), "total column must be 100%: {l}");
        }
        let rot: Vec<&str> = text.lines().filter(|l| l.contains("ct-rotating")).collect();
        for l in &rot {
            assert!(l.contains("0.0%"), "◇S decisions must be non-total: {l}");
        }
    }
}
