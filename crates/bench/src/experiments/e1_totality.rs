//! E1 — Lemma 4.1: totality of consensus with realistic detectors.
//!
//! For each algorithm and system size, we run seeded consensus executions
//! under random crash patterns and report (a) how often every correct
//! process decided and (b) how often every decision was *total* (its
//! causal chain covered every non-crashed process). The realistic-`P`
//! algorithms must be 100 % total; the `◇S` baseline — run with a
//! delayed-but-correct straggler, Lemma 4.1's run `R₁` — must exhibit
//! non-total decisions.

use crate::table::{pct, Table};
use rfd_algo::check::check_consensus;
use rfd_algo::consensus::{
    ConsensusAutomaton, ConsensusCore, FloodSetConsensus, RotatingConsensus, StrongConsensus,
};
use rfd_core::oracles::{EventuallyStrongOracle, Oracle, PerfectOracle};
use rfd_core::{FailurePattern, ProcessId, Time};
use rfd_sim::campaign::{seed_rng, Campaign, RunPlan};
use rfd_sim::{ticks_for_rounds, Adversary, SimConfig, StopCondition};

const ROUNDS: u64 = 600;

struct Outcome {
    terminated: usize,
    total: usize,
    decided_runs: usize,
    runs: usize,
}

/// One seed's contribution to an [`Outcome`].
struct SeedVerdict {
    terminated: bool,
    decided: bool,
    total: bool,
}

fn sweep<C: ConsensusCore<Val = u64>>(
    n: usize,
    stream: u64,
    oracle_history: impl Fn(&FailurePattern, u64) -> rfd_core::History<rfd_core::ProcessSet> + Sync,
    adversary: Adversary,
    max_faulty: usize,
    seeds: u64,
) -> Outcome {
    let props: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
    let base = SimConfig::new(0, ROUNDS)
        .with_adversary(adversary)
        .with_stop(StopCondition::EachCorrectOutput(1));
    let verdicts: Vec<SeedVerdict> = Campaign::new(base).seeds(0..seeds).run(
        |seed, config| {
            let mut rng = seed_rng(stream, seed);
            let pattern = FailurePattern::random(n, max_faulty, Time::new(ROUNDS), &mut rng);
            let oracle = oracle_history(&pattern, seed);
            RunPlan {
                automata: ConsensusAutomaton::<C>::fleet(&props),
                pattern,
                oracle,
                config,
            }
        },
        |_seed, pattern, result| {
            let verdict = check_consensus(pattern, &result.trace, &props);
            SeedVerdict {
                terminated: verdict.termination.is_ok(),
                decided: !result.trace.events.is_empty(),
                total: result.trace.check_totality(pattern).is_ok(),
            }
        },
    );
    Outcome {
        terminated: verdicts.iter().filter(|v| v.terminated).count(),
        total: verdicts.iter().filter(|v| v.decided && v.total).count(),
        decided_runs: verdicts.iter().filter(|v| v.decided).count(),
        runs: seeds as usize,
    }
}

/// Runs E1 and returns the result table.
#[must_use]
pub fn run_experiment(quick: bool) -> Table {
    let seeds = if quick { 10 } else { 40 };
    let mut table = Table::new(
        "E1 — totality of consensus decisions (Lemma 4.1)",
        &[
            "algorithm",
            "detector",
            "n",
            "adversary",
            "terminated",
            "total decisions",
        ],
    );
    let perfect = PerfectOracle::new(6, 3);
    let evs = EventuallyStrongOracle::new(8);
    for n in [4usize, 8] {
        let horizon = ticks_for_rounds(n, ROUNDS);
        let o = sweep::<FloodSetConsensus<u64>>(
            n,
            0xE1_00 + n as u64,
            |p, s| perfect.generate(p, horizon, s),
            Adversary::None,
            n - 1,
            seeds,
        );
        table.push(vec![
            "floodset".into(),
            "P".into(),
            n.to_string(),
            "none".into(),
            pct(o.terminated, o.runs),
            pct(o.total, o.decided_runs),
        ]);
        let o = sweep::<StrongConsensus<u64>>(
            n,
            0xE1_10 + n as u64,
            |p, s| perfect.generate(p, horizon, s),
            Adversary::None,
            n - 1,
            seeds,
        );
        table.push(vec![
            "ct-strong".into(),
            "S∩R (=P)".into(),
            n.to_string(),
            "none".into(),
            pct(o.terminated, o.runs),
            pct(o.total, o.decided_runs),
        ]);
        // ◇S baseline under Lemma 4.1's run R₁: a correct process whose
        // messages are delayed past the decision. Failure-free so the
        // majority requirement holds.
        let straggler = ProcessId::new(n - 1);
        let o = sweep::<RotatingConsensus<u64>>(
            n,
            0xE1_20 + n as u64,
            |p, s| evs.generate(p, horizon, s),
            Adversary::HoldFrom(straggler, horizon),
            0,
            seeds,
        );
        table.push(vec![
            "ct-rotating".into(),
            "◇S".into(),
            n.to_string(),
            format!("hold p{}", n - 1),
            pct(o.terminated, o.runs),
            pct(o.total, o.decided_runs),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_shape_matches_the_lemma() {
        let table = run_experiment(true);
        let text = table.render();
        // Realistic-detector algorithms: 100% total. ◇S baseline: 0%
        // total under the straggler adversary (it decides without p_{n-1}).
        assert_eq!(table.len(), 6);
        let lines: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("floodset") || l.contains("ct-strong"))
            .collect();
        for l in &lines {
            assert!(l.contains("100.0%"), "total column must be 100%: {l}");
        }
        let rot: Vec<&str> = text.lines().filter(|l| l.contains("ct-rotating")).collect();
        for l in &rot {
            assert!(l.contains("0.0%"), "◇S decisions must be non-total: {l}");
        }
    }
}
