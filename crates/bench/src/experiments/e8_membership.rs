//! E8 — §1.3: group membership emulates `P`.
//!
//! A churn scenario (two staggered crashes) under a loss sweep. The
//! emulated history must be Perfect against the ground-truth pattern;
//! the cost columns show the price of the emulation: view changes,
//! messages, and — under aggressive timeouts with heavy loss — false
//! exclusions (correct processes sacrificed to keep suspicions accurate
//! by fiat).

use crate::estimators::Estimators;
use crate::table::Table;
use rfd_core::{class_report, CheckParams, ClassId, ProcessId, Time};
use rfd_net::clock::Nanos;
use rfd_net::estimator::{ChenEstimator, FixedTimeout};
use rfd_net::membership::{run_membership, MembershipOutcome, MembershipScenario};
use rfd_sim::Campaign;

fn ms(v: u64) -> Nanos {
    Nanos::from_millis(v)
}

fn churn_scenario(loss: f64, seed: u64, duration_ms: u64) -> MembershipScenario {
    MembershipScenario {
        n: 5,
        crashes: vec![
            (ProcessId::new(2), ms(duration_ms / 4)),
            (ProcessId::new(0), ms(duration_ms / 2)),
        ],
        period: ms(50),
        loss,
        delay: (ms(1), ms(5)),
        duration: ms(duration_ms),
        seed,
    }
}

fn emulation_is_perfect(outcome: &MembershipOutcome) -> bool {
    let params = CheckParams::with_margin(Time::new(outcome.duration_ms), outcome.duration_ms / 6);
    let report = class_report(&outcome.pattern, &outcome.emulated, &params);
    report.is_in(ClassId::Perfect)
}

/// Runs E8 and returns the result table.
#[must_use]
pub fn run_experiment(quick: bool) -> Table {
    let duration_ms = if quick { 20_000 } else { 60_000 };
    let mut table = Table::new(
        "E8 — group membership emulating P (§1.3), 5 nodes, 2 crashes",
        &[
            "estimator",
            "loss",
            "emulated P",
            "view changes",
            "false exclusions",
            "messages",
        ],
    );
    // Each row is an independent 60-second virtual run — the campaign
    // sweeps the row axis. The last row is the aggressive-timeout
    // ablation: by-fiat accuracy may cost correct processes under heavy
    // loss.
    let chen = |alpha_ms: u64| Estimators::Chen(ChenEstimator::new(ms(alpha_ms), 16, ms(600)));
    let rows: [(&str, Estimators, f64, u64); 6] = [
        ("chen(α=150ms)", chen(150), 0.0, 7),
        ("chen(α=150ms)", chen(150), 0.10, 7),
        ("chen(α=150ms)", chen(150), 0.30, 7),
        ("chen(α=400ms)", chen(400), 0.10, 7),
        ("chen(α=400ms)", chen(400), 0.30, 7),
        (
            "fixed-120ms (aggressive)",
            Estimators::Fixed(FixedTimeout::new(ms(120))),
            0.30,
            11,
        ),
    ];
    let outcomes: Vec<(&str, f64, MembershipOutcome)> =
        Campaign::sweep(0..rows.len() as u64).map(|row| {
            let (name, estimator, loss, seed) = &rows[row as usize];
            let outcome = run_membership(
                estimator.clone(),
                &churn_scenario(*loss, *seed, duration_ms),
            );
            (*name, *loss, outcome)
        });
    for (name, loss, outcome) in outcomes {
        table.push(vec![
            name.to_string(),
            format!("{:.0}%", loss * 100.0),
            if emulation_is_perfect(&outcome) {
                "yes"
            } else {
                "NO"
            }
            .into(),
            outcome.view_changes.to_string(),
            outcome.false_exclusions.to_string(),
            outcome.messages.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_wellprovisioned_membership_emulates_perfect() {
        let outcome = run_membership(
            ChenEstimator::new(ms(150), 16, ms(600)),
            &churn_scenario(0.0, 7, 20_000),
        );
        assert!(emulation_is_perfect(&outcome), "{outcome:?}");
        assert_eq!(outcome.false_exclusions, 0);
        assert!(outcome.view_changes >= 2, "two crashes, two exclusions");
    }

    #[test]
    fn e8_moderate_loss_still_perfect_with_generous_margin() {
        // α = 400ms needs ~9 consecutive losses to misfire: safe at 10%.
        let outcome = run_membership(
            ChenEstimator::new(ms(400), 16, ms(600)),
            &churn_scenario(0.10, 7, 20_000),
        );
        assert_eq!(outcome.false_exclusions, 0, "{outcome:?}");
        assert!(emulation_is_perfect(&outcome), "{outcome:?}");
    }

    #[test]
    fn e8_table_is_complete() {
        let table = run_experiment(true);
        assert_eq!(table.len(), 6);
    }
}
