//! E13 — the live replicated-decision service under churn.
//!
//! E8 showed membership *emulating* `P`; E12 showed healed views
//! re-merging. E13 runs what practitioners actually deploy on top
//! (§1.1/§1.3): a replicated log decided by rotating-coordinator
//! consensus over the membership-emulated `P`
//! ([`rfd_net::service::DecisionService`]), with post-heal **state
//! transfer** re-syncing the logs of re-merged members. Per schedule ×
//! estimator, a continuous client workload measures:
//!
//! * **decided** / **thrpt** — log entries decided and decisions per
//!   second of scenario time;
//! * **t_recover** — latency from the disruptive event (the crash, or
//!   the last heal) to the next decision: the stall the by-fiat
//!   exclusion (or the merge) costs the service;
//! * **transferred** — log entries adopted via state transfer;
//! * **lost** — entries discarded while reconciling (asserted zero:
//!   consensus safety means merges only ever *extend*).
//!
//! Every simulated cell asserts uniform agreement and post-heal log
//! convergence before its row is tabulated, and is deterministic per
//! seed (pinned by the tests). `RFD_E13_UDP=1` appends wall-clock rows
//! over real loopback sockets through
//! [`rfd_net::transport::FaultyTransport`] — timing-dependent, so they
//! are smoke-shape only, like E12's.

use crate::estimators::Estimators;
use crate::table::Table;
use rfd_core::{ProcessId, ProcessSet};
use rfd_net::clock::{Nanos, SystemClock};
use rfd_net::estimator::{ChenEstimator, FixedTimeout, JacobsonEstimator, PhiAccrual};
use rfd_net::online::{Fault, FaultSchedule, OnlineScenario};
use rfd_net::service::{run_service, ServiceReport, ServiceRunner, ServiceScenario};
use rfd_net::transport::faulty_cluster;
use rfd_net::transport::udp::loopback_cluster;
use rfd_sim::Campaign;

fn ms(v: u64) -> Nanos {
    Nanos::from_millis(v)
}

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// One schedule: name, faults, the disruptive event decisions must
/// recover from, and the nodes clients submit to (kept clear of the
/// faulted ones so the workload itself survives the schedule).
struct Schedule {
    name: &'static str,
    faults: FaultSchedule,
    recover_from_ms: u64,
    clients: &'static [usize],
}

fn schedules(duration_ms: u64) -> Vec<Schedule> {
    let d = duration_ms;
    vec![
        Schedule {
            name: "coordinator crash",
            faults: FaultSchedule::new().at(ms(d / 4), Fault::Crash(p(0))),
            recover_from_ms: d / 4,
            clients: &[1, 2, 3],
        },
        Schedule {
            name: "minority cut",
            faults: FaultSchedule::new()
                .at(ms(d / 4), Fault::Partition(ProcessSet::singleton(p(3))))
                .at(ms(d / 2), Fault::Heal),
            recover_from_ms: d / 2,
            clients: &[0, 1, 2],
        },
        Schedule {
            name: "double churn",
            faults: FaultSchedule::new()
                .at(ms(d / 5), Fault::Crash(p(2)))
                .at(ms(2 * d / 5), Fault::Recover(p(2)))
                .at(ms(3 * d / 5), Fault::Partition(ProcessSet::singleton(p(3))))
                .at(ms(4 * d / 5), Fault::Heal),
            recover_from_ms: 4 * d / 5,
            clients: &[0, 1],
        },
    ]
}

fn line_up() -> Vec<(&'static str, Estimators)> {
    vec![
        ("fixed-400ms", Estimators::Fixed(FixedTimeout::new(ms(400)))),
        (
            "chen(α=150ms)",
            Estimators::Chen(ChenEstimator::new(ms(150), 16, ms(600))),
        ),
        (
            "jacobson(β=4)",
            Estimators::Jacobson(JacobsonEstimator::new(4.0, ms(600))),
        ),
        (
            "φ-accrual(φ=3)",
            Estimators::Phi(PhiAccrual::new(3.0, 32, ms(600))),
        ),
    ]
}

/// The heal-merge service scenario of one cell: a continuous client
/// workload (one command per `command_every_ms`, round-robin over the
/// schedule's client nodes) under the schedule's faults.
fn scenario(
    sched: &Schedule,
    duration_ms: u64,
    sample_every: Nanos,
    command_every_ms: u64,
    seed: u64,
) -> ServiceScenario {
    let mut s = ServiceScenario {
        online: OnlineScenario {
            n: 4,
            period: ms(50),
            duration: ms(duration_ms),
            sample_every,
            seed,
            schedule: sched.faults.clone(),
            heal_merge: true,
            ..OnlineScenario::default()
        },
        ..ServiceScenario::default()
    };
    let mut at = 1_000;
    let mut value = 100;
    // Submissions continue past the last disruption (every schedule's
    // final event is at 4/5 of the duration at the latest), leaving a
    // 1 s drain window so the tail still decides before the run ends.
    while at + 1_000 <= duration_ms {
        let client = sched.clients[(value as usize) % sched.clients.len()];
        s = s.command(ms(at), p(client), value);
        at += command_every_ms;
        value += 1;
    }
    s
}

/// Gates a cell's report (agreement + post-heal convergence + lossless
/// transfer), then reduces it to the row metrics.
fn gate(sched: &Schedule, report: &ServiceReport) -> (u64, Option<u64>, u64, u64) {
    assert!(
        report.agreement_holds(),
        "[{}] uniform agreement violated",
        sched.name
    );
    assert!(
        report.live_logs_converged(),
        "[{}] post-heal logs failed to converge",
        sched.name
    );
    assert_eq!(
        report.membership.decisions_lost, 0,
        "[{}] state transfer discarded decisions",
        sched.name
    );
    let recover = report
        .first_decision_at_or_after(ms(sched.recover_from_ms))
        .map(|at| at.saturating_sub(ms(sched.recover_from_ms)).as_millis());
    (
        report.decided_len(),
        recover,
        report.membership.decisions_transferred,
        report.membership.decisions_lost,
    )
}

#[allow(clippy::too_many_arguments)]
fn push_row(
    table: &mut Table,
    sched_name: &str,
    transport: &str,
    est: &str,
    duration_ms: u64,
    decided: u64,
    recover_ms: Option<u64>,
    transferred: u64,
    lost: u64,
) {
    table.push(vec![
        sched_name.into(),
        transport.into(),
        est.into(),
        format!("{decided}"),
        format!("{:.1}/s", decided as f64 / (duration_ms as f64 / 1_000.0)),
        recover_ms.map_or("never".into(), |v| format!("{v}ms")),
        format!("{transferred}"),
        format!("{lost}"),
    ]);
}

/// Whether the wall-clock UDP cells are enabled (`RFD_E13_UDP=1`).
#[must_use]
pub fn udp_cells_enabled() -> bool {
    std::env::var("RFD_E13_UDP").is_ok_and(|v| v == "1")
}

/// One wall-clock cell: the same service scenario over real loopback
/// UDP sockets under the shared fault plane.
fn run_udp_cell(prototype: Estimators, scenario: &ServiceScenario) -> ServiceReport {
    let clock = SystemClock::new();
    let transports = loopback_cluster(scenario.online.n).expect("bind loopback cluster");
    let (nodes, injector) = faulty_cluster(transports, 0.0, scenario.online.seed, clock.clone());
    let mut runner = ServiceRunner::over(prototype, scenario.clone(), nodes, injector, clock);
    runner.run_to_end();
    runner.report()
}

/// Runs E13 and returns the result table.
#[must_use]
pub fn run_experiment(quick: bool) -> Table {
    let (seeds, duration_ms) = if quick { (2, 16_000) } else { (3, 30_000) };
    let mut table = Table::new(
        "E13 — live decision service under churn (n=4, heal-merge membership, consensus over emulated P)",
        &[
            "schedule",
            "transport",
            "estimator",
            "decided",
            "thrpt",
            "t_recover",
            "transferred",
            "lost",
        ],
    );
    for sched in schedules(duration_ms) {
        for (est_name, proto) in line_up() {
            let cells: Vec<(u64, Option<u64>, u64, u64)> = Campaign::sweep(0..seeds).map(|seed| {
                let report = run_service(
                    proto.clone(),
                    &scenario(&sched, duration_ms, ms(5), 600, seed),
                );
                gate(&sched, &report)
            });
            let n = cells.len() as u64;
            let decided = cells.iter().map(|c| c.0).sum::<u64>() / n;
            let recovers: Vec<u64> = cells.iter().filter_map(|c| c.1).collect();
            let recover = (recovers.len() == cells.len()).then(|| recovers.iter().sum::<u64>() / n);
            let transferred = cells.iter().map(|c| c.2).sum::<u64>() / n;
            let lost = cells.iter().map(|c| c.3).sum::<u64>();
            push_row(
                &mut table,
                sched.name,
                "sim",
                est_name,
                duration_ms,
                decided,
                recover,
                transferred,
                lost,
            );
        }
    }
    if udp_cells_enabled() {
        // Wall-clock rows: one seed, one compressed 8 s schedule per
        // cell, coarser sampling — these genuinely sleep.
        let udp_duration = 8_000;
        for sched in schedules(udp_duration) {
            for (est_name, proto) in line_up() {
                let report = run_udp_cell(proto, &scenario(&sched, udp_duration, ms(10), 400, 0));
                // Wall-clock cells assert shape only (no gate): timing
                // on a loaded host may leave stragglers mid-transfer.
                push_row(
                    &mut table,
                    sched.name,
                    "udp",
                    est_name,
                    udp_duration,
                    report.decided_len(),
                    report
                        .first_decision_at_or_after(ms(sched.recover_from_ms))
                        .map(|at| at.saturating_sub(ms(sched.recover_from_ms)).as_millis()),
                    report.membership.decisions_transferred,
                    report.membership.decisions_lost,
                );
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_every_simulated_cell_recovers_and_agrees() {
        // `gate` asserts agreement/convergence/losslessness per cell;
        // here additionally: the service always decides again after the
        // disruption, on every row.
        let table = run_experiment(true);
        assert!(table.len() >= 12, "3 schedules × 4 estimators");
        let rendered = table.render();
        assert!(
            !rendered.contains("never"),
            "a cell never decided after its disruption:\n{rendered}"
        );
    }

    #[test]
    fn e13_cells_are_deterministic_per_seed() {
        let sched = &schedules(16_000)[1];
        let sc = scenario(sched, 16_000, ms(5), 600, 3);
        let a = run_service(ChenEstimator::new(ms(150), 16, ms(600)), &sc);
        let b = run_service(ChenEstimator::new(ms(150), 16, ms(600)), &sc);
        assert_eq!(a.logs, b.logs);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(
            a.membership.decisions_transferred,
            b.membership.decisions_transferred
        );
        assert!(
            a.membership.decisions_transferred > 0,
            "the cut forces a transfer"
        );
    }

    /// The wall-clock UDP path, kept tiny: one compressed
    /// coordinator-crash cell over real loopback sockets.
    #[test]
    fn e13_udp_cell_smoke() {
        let sched = &schedules(4_000)[0];
        let report = run_udp_cell(
            Estimators::Chen(ChenEstimator::new(ms(150), 16, ms(600))),
            &scenario(sched, 4_000, ms(10), 400, 0),
        );
        assert!(report.agreement_holds());
        assert!(report.decided_len() > 0, "decisions flow over real sockets");
    }
}
