//! E16 — the long-horizon lossy soak: retransmission discharges the
//! quasi-reliable-channel assumption.
//!
//! The paper's rotating-coordinator protocol (Fig. 6) assumes
//! quasi-reliable channels: a message sent by a correct process to a
//! correct process is eventually received. Our lossy transports
//! deliberately violate that — and PR 6 documented the consequence: a
//! send-once stack wedges forever when one conspiring loss pattern
//! eats a consensus frame (10% loss, seed 3, slot 0, permanently).
//! The retransmission plane (state-derived per-slot re-sends, laggard
//! pushes, snapshot retries — see `ARCHITECTURE.md`) rebuilds the
//! assumption *on top of* the lossy wire, and E16 is the long-horizon
//! proof: the compacted decision service, driven through partition /
//! heal cycles at 0/5/10/20% datagram loss across the estimator zoo,
//! where **every** cell must
//!
//! * decide *every submitted command* (no stalled slot, ever — the
//!   wedge is dead),
//! * preserve uniform agreement and lose no acked decision,
//! * hold memory flat (every retained log stays within a small
//!   multiple of the compaction tail; command pools drain to empty),
//! * hold rejoin cost flat (each cycle's snapshot rejoin lands below a
//!   fixed bound no matter how deep into the run it happens),
//!
//! and every cell replays bit-identically per seed. The fixed baseline
//! runs at 800 ms: a static timeout must be provisioned for the worst
//! loss regime it will meet (at 20% loss a 400 ms window over 50 ms
//! heartbeats false-suspects every few seconds of virtual time — the
//! detector-physics counterpart of `service_differential`'s loss
//! matrix), whereas the adaptive estimators provision themselves.
//!
//! Scale tiers: quick mode (CI smoke) runs ~240 commands per cell;
//! the default full run ~1,500; `RFD_E16_FULL=1` appends the headline
//! soak — 100,000 commands (≈ 1.4 hours of virtual time) at 10% loss
//! with periodic outages — which is where the ROADMAP's 10⁵-decision
//! target is discharged.

use crate::estimators::Estimators;
use crate::table::Table;
use rfd_core::{ProcessId, ProcessSet};
use rfd_net::clock::Nanos;
use rfd_net::estimator::{ChenEstimator, FixedTimeout, JacobsonEstimator, PhiAccrual};
use rfd_net::online::{Fault, FaultSchedule, OnlineScenario};
use rfd_net::service::{CompactionPolicy, ServiceRunner, ServiceScenario};

fn ms(v: u64) -> Nanos {
    Nanos::from_millis(v)
}

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Heartbeat period (and the base the retransmission RTO derives from).
const PERIOD_MS: u64 = 50;
/// Compaction keeps this many entries; "flat memory" is gated as a
/// small multiple of it.
const RETAIN: u64 = 16;
/// Quiet tail after the last command for retries and rejoins to drain.
const DRAIN_MS: u64 = 6_000;
/// Every rejoin across the whole horizon must land below this bound —
/// the "flat rejoin cost" gate (snapshot rejoin is O(retained tail),
/// independent of how much history the outage missed).
const REJOIN_CAP_MS: u64 = 4_000;

/// The loss sweep (probability each datagram is dropped).
const LOSSES: [f64; 4] = [0.0, 0.05, 0.10, 0.20];

/// Offered load per loss regime: one command every this many
/// milliseconds. Loss shrinks the channel's decision capacity — a slot
/// that loses a critical frame waits out an estimator-derived RTO
/// (floor 2 heartbeat periods, cap 8), so mean slot latency grows with
/// the loss rate and the workload must stay below capacity for the
/// every-command-decided gate to be about *liveness* (nothing wedges)
/// rather than queueing. The sweep keeps utilization comparable across
/// regimes; each cell's realized backlog shows up in the `lag` column
/// (decision timestamp of the last command minus its submit time).
fn cadence_ms(loss: f64) -> u64 {
    if loss >= 0.20 {
        400
    } else if loss >= 0.10 {
        200
    } else if loss >= 0.05 {
        100
    } else {
        50
    }
}

/// The estimator zoo: the E14/E15 adaptive line-up, with the fixed
/// baseline provisioned for the 20% regime (module docs).
fn line_up() -> Vec<(&'static str, Estimators)> {
    vec![
        ("fixed-800ms", Estimators::Fixed(FixedTimeout::new(ms(800)))),
        (
            "chen(α=150ms)",
            Estimators::Chen(ChenEstimator::new(ms(150), 16, ms(600))),
        ),
        (
            "jacobson(β=4)",
            Estimators::Jacobson(JacobsonEstimator::new(4.0, ms(600))),
        ),
        (
            "φ-accrual(φ=3)",
            Estimators::Phi(PhiAccrual::new(3.0, 32, ms(600))),
        ),
    ]
}

/// One cell's scenario: `commands` commands at a fixed cadence from the
/// three always-majority clients, `cycles` partition/heal outages of
/// `p3` spread evenly through the workload (each deep enough to be
/// excluded and rejoin via snapshot), compaction retaining [`RETAIN`]
/// entries, uniform datagram `loss`.
fn scenario(loss: f64, commands: u64, cycles: u64, seed: u64) -> ServiceScenario {
    let cadence = cadence_ms(loss);
    let workload_ms = commands * cadence;
    let duration_ms = 1_000 + workload_ms + DRAIN_MS;
    let mut schedule = FaultSchedule::new();
    if let Some(span) = workload_ms.checked_div(cycles) {
        let hold = (span / 4).clamp(1_500, 5_000);
        for i in 0..cycles {
            let at = 1_000 + i * span + span / 2;
            schedule = schedule
                .at(ms(at), Fault::Partition(ProcessSet::singleton(p(3))))
                .at(ms(at + hold), Fault::Heal);
        }
    }
    let mut s = ServiceScenario {
        online: OnlineScenario {
            n: 4,
            period: ms(PERIOD_MS),
            duration: ms(duration_ms),
            sample_every: ms(5),
            seed,
            loss,
            heal_merge: true,
            schedule,
            ..OnlineScenario::default()
        },
        ..ServiceScenario::default()
    }
    .with_compaction(CompactionPolicy::retain_last(RETAIN));
    for i in 0..commands {
        s = s.command(ms(1_000 + i * cadence), p((i as usize) % 3), 1_000 + i);
    }
    s
}

/// One soaked cell, gated. Returns the row metrics.
struct Cell {
    decided: u64,
    retransmits: u64,
    duplicates: u64,
    max_retained: usize,
    rejoins: usize,
    max_rejoin_ms: u64,
    /// How far behind schedule the final command decided: first
    /// decision timestamp of the last log index minus its submit time.
    lag_ms: u64,
}

/// Runs one cell and asserts the full E16 contract on it.
fn soak(label: &str, proto: Estimators, loss: f64, commands: u64, cycles: u64, seed: u64) -> Cell {
    let mut runner = ServiceRunner::new(proto, scenario(loss, commands, cycles, seed));
    runner.run_to_end();
    let report = runner.report();
    // Liveness: the wedge is dead — every submitted command decided.
    assert_eq!(
        report.decided_len(),
        commands,
        "[{label}] stalled slots: only {} of {commands} commands decided",
        report.decided_len()
    );
    // Safety: agreement everywhere, nothing acked ever lost.
    assert!(report.agreement_holds(), "[{label}] agreement violated");
    assert!(
        report.live_logs_converged(),
        "[{label}] live logs failed to reconverge"
    );
    assert_eq!(
        report.membership.decisions_lost, 0,
        "[{label}] state transfer lost an acked decision"
    );
    // Flat memory: every retained log stays within a small multiple of
    // the compaction tail, and every pool drained to empty.
    let max_retained = report.logs.iter().map(Vec::len).max().unwrap_or(0);
    assert!(
        max_retained as u64 <= 4 * RETAIN,
        "[{label}] memory grew past the retained tail: {max_retained} entries held"
    );
    assert!(
        report.bases.iter().all(|&b| b > 0),
        "[{label}] compaction never advanced: {:?}",
        report.bases
    );
    for ix in 0..4 {
        assert_eq!(
            runner.node(ix).pending(),
            0,
            "[{label}] node {ix} still holds undecided pooled commands"
        );
    }
    // Flat rejoin cost: every heal across the horizon resolved into a
    // measured rejoin below the fixed bound — the last outage of a long
    // run costs no more than the first.
    let rejoins = &report.membership.rejoin_latencies;
    if cycles > 0 {
        assert!(
            rejoins.len() >= cycles as usize,
            "[{label}] only {} of {cycles} outage cycles resolved into a rejoin",
            rejoins.len()
        );
    }
    let max_rejoin = rejoins.iter().max().copied().unwrap_or(Nanos::ZERO);
    assert!(
        max_rejoin <= ms(REJOIN_CAP_MS),
        "[{label}] rejoin cost grew with the horizon: {}ms",
        max_rejoin.as_millis()
    );
    // The plane fired where it must: lossy wires force retransmissions.
    if loss > 0.0 {
        assert!(
            report.membership.retransmits_sent > 0,
            "[{label}] {loss} loss decided everything without a single retry?"
        );
    }
    let last_submit = 1_000 + (commands - 1) * cadence_ms(loss);
    let last_decided = report
        .decisions
        .iter()
        .filter(|(_, _, d)| d.index == commands - 1)
        .map(|(at, _, _)| at.as_millis())
        .min()
        .unwrap_or(last_submit);
    Cell {
        decided: report.decided_len(),
        retransmits: report.membership.retransmits_sent,
        duplicates: report.membership.duplicate_frames_dropped,
        max_retained,
        rejoins: rejoins.len(),
        max_rejoin_ms: max_rejoin.as_millis(),
        lag_ms: last_decided.saturating_sub(last_submit),
    }
}

/// Whether the hours-of-virtual-time headline soak is requested.
fn full_soak_requested() -> bool {
    std::env::var("RFD_E16_FULL").is_ok_and(|v| v == "1")
}

/// Runs E16 and returns the result table.
///
/// # Panics
///
/// Panics if any cell stalls a slot, violates agreement, loses an
/// acked decision, grows memory past the retained tail, or exceeds the
/// rejoin-cost bound (see the module docs).
#[must_use]
pub fn run_experiment(quick: bool) -> Table {
    let (commands, cycles) = if quick { (120, 2) } else { (600, 3) };
    let mut table = Table::new(
        "E16 — long-horizon lossy soak (n=4, period 50ms, retain-last-16, p3 outage cycles; \
         every-command-decided + agreement + flat memory + flat rejoin gated per cell)",
        &[
            "estimator",
            "loss",
            "cadence",
            "decided",
            "retransmits",
            "dup dropped",
            "max retained",
            "rejoins",
            "max rejoin",
            "lag",
        ],
    );
    for (est_name, proto) in line_up() {
        for loss in LOSSES {
            let label = format!("{est_name}/loss {loss}");
            let cell = soak(&label, proto.clone(), loss, commands, cycles, 1);
            table.push(row(est_name, loss, &cell));
        }
    }
    if full_soak_requested() {
        // The ROADMAP's 10⁵-decision horizon: ~1.4 hours of virtual
        // time at 10% loss with an outage every ~10 virtual minutes.
        let proto = Estimators::Chen(ChenEstimator::new(ms(150), 16, ms(600)));
        let cell = soak("chen/headline-soak", proto, 0.10, 100_000, 8, 1);
        table.push(row("chen(α=150ms) [100k soak]", 0.10, &cell));
    }
    table
}

fn row(est_name: &str, loss: f64, cell: &Cell) -> Vec<String> {
    vec![
        est_name.into(),
        format!("{loss:.2}"),
        format!("{}ms", cadence_ms(loss)),
        format!("{}", cell.decided),
        format!("{}", cell.retransmits),
        format!("{}", cell.duplicates),
        format!("{}", cell.max_retained),
        format!("{}", cell.rejoins),
        format!("{}ms", cell.max_rejoin_ms),
        format!("{}ms", cell.lag_ms),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfd_net::service::run_service;

    #[test]
    fn e16_quick_grid_covers_the_loss_sweep_for_every_estimator() {
        // `soak` gates liveness, agreement, flat memory and flat
        // rejoin per cell; here additionally: the table is complete.
        let table = run_experiment(true);
        assert_eq!(table.len(), 16, "4 estimators × 4 losses");
    }

    #[test]
    fn e16_cells_are_deterministic_per_seed() {
        let sc = scenario(0.10, 240, 2, 1);
        let a = run_service(ChenEstimator::new(ms(150), 16, ms(600)), &sc);
        let b = run_service(ChenEstimator::new(ms(150), 16, ms(600)), &sc);
        assert_eq!(a.logs, b.logs);
        assert_eq!(a.bases, b.bases);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.membership.retransmits_sent, b.membership.retransmits_sent);
        assert_eq!(
            a.membership.duplicate_frames_dropped,
            b.membership.duplicate_frames_dropped
        );
        assert!(
            a.membership.retransmits_sent > 0,
            "a 10% lossy soak must exercise the retransmission plane"
        );
    }
}
