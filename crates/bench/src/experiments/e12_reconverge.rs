//! E12 — partition-heal reconvergence of the membership service.
//!
//! E11b showed the classic §1.3 service under churn: a partitioned
//! minority is excluded by fiat and the split never heals — exclusion is
//! forever. E12 turns on **heal-merge reconciliation**
//! ([`rfd_net::membership::MembershipNode::with_heal_merge`]) and
//! measures what the by-fiat design gives up and what the merge wins
//! back, per estimator:
//!
//! * **split-brain** — total time live members held divergent views;
//! * **t_reconverge** — mean latency from each heal to the fleet holding
//!   one single view again (the merge-less service scores `never` here);
//! * **view changes** and **false exclusions** — the churn cost and the
//!   by-fiat exclusions incurred *during* the cut.
//!
//! Simulated cells run on the virtual network and are deterministic per
//! seed (asserted by the tests). Setting `RFD_E12_UDP=1` appends
//! wall-clock rows driving the identical schedules over **real loopback
//! UDP sockets** through [`rfd_net::transport::FaultyTransport`] — those
//! are timing-dependent, so the default table leaves them off and every
//! numeric assertion stays on the deterministic cells (the UDP path is
//! smoke-tested for shape only).

use crate::estimators::Estimators;
use crate::table::Table;
use rfd_core::{ProcessId, ProcessSet};
use rfd_net::clock::{Nanos, SystemClock};
use rfd_net::estimator::{ChenEstimator, FixedTimeout, JacobsonEstimator, PhiAccrual};
use rfd_net::online::{
    run_membership_churn, run_membership_churn_over, Fault, FaultSchedule, MembershipChurnReport,
    OnlineScenario,
};
use rfd_net::transport::faulty_cluster;
use rfd_net::transport::udp::loopback_cluster;
use rfd_sim::Campaign;

fn ms(v: u64) -> Nanos {
    Nanos::from_millis(v)
}

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// The partition/heal schedules of the experiment, parameterized by
/// duration: `(name, schedule, number of heals)`.
fn schedules(duration_ms: u64) -> Vec<(&'static str, FaultSchedule, usize)> {
    let d = duration_ms;
    let mut even = ProcessSet::empty();
    even.insert(p(2));
    even.insert(p(3));
    vec![
        (
            "minority cut",
            FaultSchedule::new()
                .at(ms(d / 4), Fault::Partition(ProcessSet::singleton(p(3))))
                .at(ms(d / 2), Fault::Heal),
            1,
        ),
        (
            "even split",
            FaultSchedule::new()
                .at(ms(d / 4), Fault::Partition(even))
                .at(ms(d / 2), Fault::Heal),
            1,
        ),
        (
            "double cut",
            FaultSchedule::new()
                .at(ms(d / 5), Fault::Partition(ProcessSet::singleton(p(3))))
                .at(ms(2 * d / 5), Fault::Heal)
                .at(ms(3 * d / 5), Fault::Partition(even))
                .at(ms(4 * d / 5), Fault::Heal),
            2,
        ),
    ]
}

fn line_up() -> Vec<(&'static str, Estimators)> {
    vec![
        ("fixed-400ms", Estimators::Fixed(FixedTimeout::new(ms(400)))),
        (
            "chen(α=150ms)",
            Estimators::Chen(ChenEstimator::new(ms(150), 16, ms(600))),
        ),
        (
            "jacobson(β=4)",
            Estimators::Jacobson(JacobsonEstimator::new(4.0, ms(600))),
        ),
        (
            "φ-accrual(φ=3)",
            Estimators::Phi(PhiAccrual::new(3.0, 32, ms(600))),
        ),
    ]
}

/// The heal-merge scenario shared by the simulated and UDP cells.
fn scenario(
    schedule: FaultSchedule,
    duration_ms: u64,
    sample_every: Nanos,
    seed: u64,
) -> OnlineScenario {
    OnlineScenario {
        n: 4,
        period: ms(50),
        duration: ms(duration_ms),
        sample_every,
        seed,
        schedule,
        heal_merge: true,
        ..OnlineScenario::default()
    }
}

struct RowStats {
    split_brain_ms: u64,
    reconverge_ms: Option<u64>,
    heals_missed: usize,
    view_changes: u64,
    false_exclusions: u64,
}

fn summarize(reports: &[MembershipChurnReport]) -> RowStats {
    let n = reports.len() as u64;
    let ttrs: Vec<u64> = reports
        .iter()
        .flat_map(|r| {
            r.time_to_reconverge
                .iter()
                .filter_map(|t| t.map(Nanos::as_millis))
        })
        .collect();
    RowStats {
        split_brain_ms: reports
            .iter()
            .map(|r| r.split_brain_duration.as_millis())
            .sum::<u64>()
            / n,
        reconverge_ms: if ttrs.is_empty() {
            None
        } else {
            Some(ttrs.iter().sum::<u64>() / ttrs.len() as u64)
        },
        heals_missed: reports
            .iter()
            .map(|r| r.time_to_reconverge.iter().filter(|t| t.is_none()).count())
            .sum(),
        view_changes: reports.iter().map(|r| r.view_changes).sum::<u64>() / n,
        false_exclusions: reports
            .iter()
            .map(|r| r.false_exclusions.len() as u64)
            .sum::<u64>()
            / n,
    }
}

fn push_row(table: &mut Table, schedule_name: &str, transport: &str, est: &str, s: &RowStats) {
    table.push(vec![
        schedule_name.into(),
        transport.into(),
        est.into(),
        format!("{}ms", s.split_brain_ms),
        match s.reconverge_ms {
            Some(v) if s.heals_missed == 0 => format!("{v}ms"),
            Some(v) => format!("{v}ms ({} missed)", s.heals_missed),
            None => "never".into(),
        },
        format!("{}", s.view_changes),
        format!("{}", s.false_exclusions),
    ]);
}

/// One wall-clock cell: the same schedule over real loopback UDP
/// sockets, crash/partition faults injected by the
/// [`rfd_net::transport::FaultInjector`] fault plane.
fn run_udp_cell(prototype: Estimators, scenario: &OnlineScenario) -> MembershipChurnReport {
    let clock = SystemClock::new();
    let transports = loopback_cluster(scenario.n).expect("bind loopback cluster");
    let (nodes, injector) = faulty_cluster(transports, 0.0, scenario.seed, clock.clone());
    run_membership_churn_over(prototype, scenario, nodes, injector, clock)
}

/// Whether the wall-clock UDP cells are enabled (`RFD_E12_UDP=1`); off
/// by default so the suite stays hermetic and timing-independent.
#[must_use]
pub fn udp_cells_enabled() -> bool {
    std::env::var("RFD_E12_UDP").is_ok_and(|v| v == "1")
}

/// Runs E12 and returns the result table.
#[must_use]
pub fn run_experiment(quick: bool) -> Table {
    let (seeds, duration_ms) = if quick { (2, 16_000) } else { (4, 30_000) };
    let mut table = Table::new(
        "E12 — partition-heal reconvergence (n=4, heal-merge membership, period 50ms)",
        &[
            "schedule",
            "transport",
            "estimator",
            "split-brain",
            "t_reconverge",
            "views",
            "false excl.",
        ],
    );
    for (schedule_name, schedule, _heals) in schedules(duration_ms) {
        for (est_name, proto) in line_up() {
            let reports: Vec<MembershipChurnReport> = Campaign::sweep(0..seeds).map(|seed| {
                run_membership_churn(
                    proto.clone(),
                    &scenario(schedule.clone(), duration_ms, ms(1), seed),
                )
            });
            push_row(
                &mut table,
                schedule_name,
                "sim",
                est_name,
                &summarize(&reports),
            );
        }
    }
    if udp_cells_enabled() {
        // Wall-clock rows: one seed, a compressed schedule (8 s per
        // cell), coarser sampling — these genuinely sleep.
        let udp_duration = 8_000;
        for (schedule_name, schedule, _heals) in schedules(udp_duration) {
            for (est_name, proto) in line_up() {
                let report =
                    run_udp_cell(proto, &scenario(schedule.clone(), udp_duration, ms(5), 0));
                push_row(
                    &mut table,
                    schedule_name,
                    "udp",
                    est_name,
                    &summarize(&[report]),
                );
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_every_simulated_cell_reconverges() {
        let table = run_experiment(true);
        assert!(table.len() >= 12, "3 schedules × 4 estimators");
        let rendered = table.render();
        assert!(
            !rendered.contains("never") && !rendered.contains("missed"),
            "every heal must reconverge under heal-merge:\n{rendered}"
        );
    }

    #[test]
    fn e12_cells_are_deterministic_per_seed() {
        let (_, schedule, heals) = schedules(16_000).swap_remove(2);
        let sc = scenario(schedule, 16_000, ms(1), 7);
        let a = run_membership_churn(ChenEstimator::new(ms(150), 16, ms(600)), &sc);
        let b = run_membership_churn(ChenEstimator::new(ms(150), 16, ms(600)), &sc);
        assert_eq!(a.time_to_reconverge.len(), heals);
        assert_eq!(a.time_to_reconverge, b.time_to_reconverge);
        assert_eq!(a.split_brain_duration, b.split_brain_duration);
        assert_eq!(a.view_changes, b.view_changes);
        assert_eq!(a.false_exclusions, b.false_exclusions);
        assert_eq!(a.exclusion_latency, b.exclusion_latency);
    }

    /// The wall-clock UDP path is exercised end to end (but kept tiny):
    /// one compressed minority-cut cell over real loopback sockets.
    #[test]
    fn e12_udp_cell_smoke() {
        let (_, schedule, _) = schedules(3_000).swap_remove(0);
        let report = run_udp_cell(
            Estimators::Chen(ChenEstimator::new(ms(150), 16, ms(600))),
            &scenario(schedule, 3_000, ms(5), 0),
        );
        assert_eq!(report.time_to_reconverge.len(), 1);
    }
}
