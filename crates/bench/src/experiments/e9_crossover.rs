//! E9 — who wins where: the `f` sweep and the `◇S` crossover.
//!
//! Decision latency (global ticks until the last correct process
//! decides), message cost, and termination rate for the three consensus
//! stacks as `f` grows from 0 to `n − 1`. The paper's prediction: the
//! `◇S`-based stack is competitive while `f < ⌈n/2⌉` and stops
//! terminating at the majority boundary, while the realistic-`P` stacks
//! keep terminating all the way to `f = n − 1` — the collapse in action.

use crate::table::{pct, Table};
use rfd_algo::check::check_consensus;
use rfd_algo::consensus::{
    ConsensusAutomaton, ConsensusCore, FloodSetConsensus, RotatingConsensus, StrongConsensus,
};
use rfd_core::oracles::{EventuallyStrongOracle, Oracle, PerfectOracle};
use rfd_core::{FailurePattern, ProcessId, Time};
use rfd_sim::campaign::{Campaign, RunPlan};
use rfd_sim::{ticks_for_rounds, SimConfig, StopCondition};

const ROUNDS: u64 = 800;

struct Row {
    terminated: usize,
    runs: usize,
    latency_sum: u64,
    latency_count: u64,
    msgs_sum: u64,
}

fn sweep<C: ConsensusCore<Val = u64>>(
    n: usize,
    f: usize,
    history_of: impl Fn(&FailurePattern, u64) -> rfd_core::History<rfd_core::ProcessSet> + Sync,
    seeds: u64,
) -> Row {
    let props: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
    // f crashes staggered over the early run.
    let mut pattern = FailurePattern::new(n);
    for k in 0..f {
        pattern.set_crash(ProcessId::new(k), Time::new(20 + 30 * k as u64));
    }
    let base = SimConfig::new(0, ROUNDS).with_stop(StopCondition::EachCorrectOutput(1));
    // Per seed: None if not terminated, else (last decision tick, msgs).
    let per_seed: Vec<Option<(u64, u64)>> = Campaign::new(base).seeds(0..seeds).run(
        |seed, config| RunPlan {
            pattern: pattern.clone(),
            oracle: history_of(&pattern, seed),
            automata: ConsensusAutomaton::<C>::fleet(&props),
            config,
        },
        |_seed, pattern, result| {
            let verdict = check_consensus(pattern, &result.trace, &props);
            verdict.termination.is_ok().then(|| {
                let last_decision = result
                    .trace
                    .first_outputs(n)
                    .into_iter()
                    .flatten()
                    .filter(|e| pattern.correct().contains(e.process))
                    .map(|e| e.time.ticks())
                    .max()
                    .unwrap_or(0);
                (last_decision, result.trace.messages_sent)
            })
        },
    );
    let mut row = Row {
        terminated: 0,
        runs: seeds as usize,
        latency_sum: 0,
        latency_count: 0,
        msgs_sum: 0,
    };
    for (latency, msgs) in per_seed.into_iter().flatten() {
        row.terminated += 1;
        row.latency_sum += latency;
        row.latency_count += 1;
        row.msgs_sum += msgs;
    }
    row
}

/// Runs E9 and returns the result table.
#[must_use]
pub fn run_experiment(quick: bool) -> Table {
    let seeds = if quick { 5 } else { 20 };
    let n = 6;
    let mut table = Table::new(
        "E9 — consensus under the f sweep (n=6): the ◇S majority crossover",
        &[
            "algorithm",
            "detector",
            "f",
            "terminated",
            "mean latency (ticks)",
            "mean msgs",
        ],
    );
    let perfect = PerfectOracle::new(6, 3);
    let evs = EventuallyStrongOracle::new(8);
    let horizon = ticks_for_rounds(n, ROUNDS);
    for f in 0..n {
        for (name, detector, row) in [
            (
                "floodset",
                "P",
                sweep::<FloodSetConsensus<u64>>(
                    n,
                    f,
                    |p, s| perfect.generate(p, horizon, s),
                    seeds,
                ),
            ),
            (
                "ct-strong",
                "S∩R (=P)",
                sweep::<StrongConsensus<u64>>(n, f, |p, s| perfect.generate(p, horizon, s), seeds),
            ),
            (
                "ct-rotating",
                "◇S",
                sweep::<RotatingConsensus<u64>>(n, f, |p, s| evs.generate(p, horizon, s), seeds),
            ),
        ] {
            let latency = if row.latency_count > 0 {
                format!("{:.0}", row.latency_sum as f64 / row.latency_count as f64)
            } else {
                "—".into()
            };
            let msgs = if row.latency_count > 0 {
                format!("{:.0}", row.msgs_sum as f64 / row.latency_count as f64)
            } else {
                "—".into()
            };
            table.push(vec![
                name.into(),
                detector.into(),
                f.to_string(),
                pct(row.terminated, row.runs),
                latency,
                msgs,
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_rotating_crosses_over_at_the_majority_boundary() {
        let seeds = 5;
        let n = 6;
        let horizon = ticks_for_rounds(n, ROUNDS);
        let perfect = PerfectOracle::new(6, 3);
        let evs = EventuallyStrongOracle::new(8);
        // f = 2 < n/2: ◇S terminates.
        let below =
            sweep::<RotatingConsensus<u64>>(n, 2, |p, s| evs.generate(p, horizon, s), seeds);
        assert_eq!(below.terminated, below.runs, "◇S must work below majority");
        // f = 3 = n/2: ◇S cannot terminate.
        let at = sweep::<RotatingConsensus<u64>>(n, 3, |p, s| evs.generate(p, horizon, s), seeds);
        assert_eq!(at.terminated, 0, "◇S must block at the majority boundary");
        // The P-based stack keeps terminating at f = n−1.
        let p_max = sweep::<FloodSetConsensus<u64>>(
            n,
            n - 1,
            |p, s| perfect.generate(p, horizon, s),
            seeds,
        );
        assert_eq!(p_max.terminated, p_max.runs, "P works for any f");
    }
}
