//! The experiment suite: one module per derived experiment E1–E16.
//!
//! The paper (a theory paper) has no numbered tables or figures; each
//! experiment here regenerates one of its theorems, constructions or
//! counterexamples as an empirical table. `docs/EXPERIMENTS.md` is the
//! handbook: per experiment, the claim it reproduces, the paper
//! section, how to run it, and what pins it.

pub mod e10_lattice;
pub mod e11_online;
pub mod e12_reconverge;
pub mod e13_service;
pub mod e14_rejoin;
pub mod e15_weather;
pub mod e16_soak;
pub mod e1_totality;
pub mod e2_reduction;
pub mod e3_trb;
pub mod e4_nonuniform;
pub mod e5_collapse;
pub mod e6_marabout;
pub mod e7_qos;
pub mod e8_membership;
pub mod e9_crossover;
pub mod e9b_ablation;

use crate::table::Table;

/// An experiment entry point: `quick` trades seed counts for speed.
pub type ExperimentFn = fn(bool) -> Table;

/// The experiment catalog, in suite order, **without running anything**
/// — callers that want a subset (the `experiments` binary's positional
/// ids) filter first and pay only for what they select.
#[must_use]
pub fn catalog() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("E1", e1_totality::run_experiment),
        ("E2", e2_reduction::run_experiment),
        ("E3", e3_trb::run_experiment),
        ("E4", e4_nonuniform::run_experiment),
        ("E5", e5_collapse::run_experiment),
        ("E6", e6_marabout::run_experiment),
        ("E7", e7_qos::run_experiment),
        ("E7B", e7_qos::run_burst_ablation),
        ("E8", e8_membership::run_experiment),
        ("E9", e9_crossover::run_experiment),
        ("E9B", e9b_ablation::run_experiment),
        ("E10", e10_lattice::run_experiment),
        ("E11", e11_online::run_experiment),
        ("E11B", e11_online::run_membership_ablation),
        ("E12", e12_reconverge::run_experiment),
        ("E13", e13_service::run_experiment),
        ("E14", e14_rejoin::run_experiment),
        ("E15", e15_weather::run_experiment),
        ("E16", e16_soak::run_experiment),
    ]
}

/// Runs every experiment, returning `(id, table)` pairs.
#[must_use]
pub fn run_all(quick: bool) -> Vec<(&'static str, Table)> {
    catalog()
        .into_iter()
        .map(|(id, run)| (id, run(quick)))
        .collect()
}
