//! E11 — online detection under churn (the long-running service view).
//!
//! The paper's §1.3 observation is that practitioners run failure
//! detection as a *service*: a long-lived membership/monitoring loop,
//! not a batch job. E11 drives crash / recover / partition schedules
//! through the streaming [`OnlineRunner`] — every sample tick advances
//! the live scenario and updates an incremental
//! [`rfd_net::qos::QosMonitor`] per observer–target pair — and
//! tabulates detection latency and mistake rates per estimator.
//!
//! Every row also verifies the subsystem's defining invariant: the
//! incremental monitor's numbers equal the batch
//! [`rfd_net::qos::QosTracker::finalize`] **exactly** (bitwise on the
//! floating-point rates) on the identical sample stream — the `=batch`
//! column.
//!
//! The churn schedule is where the two satellite estimator fixes show:
//! Jacobson's Karn-style clamp keeps the post-recovery deadline tight
//! (pre-fix, one outage-sized gap inflated it for dozens of periods),
//! and φ-accrual's saturating deadline never promises a crossing it
//! cannot deliver.

use crate::table::Table;
use rfd_core::{ProcessId, ProcessSet};
use rfd_net::clock::Nanos;
use rfd_net::estimator::{ChenEstimator, FixedTimeout, JacobsonEstimator, PhiAccrual};
use rfd_net::online::{run_membership_churn, Fault, FaultSchedule, OnlineRunner, OnlineScenario};
use rfd_net::qos::QosReport;
use rfd_net::ArrivalEstimator;
use rfd_sim::Campaign;

fn ms(v: u64) -> Nanos {
    Nanos::from_millis(v)
}

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// The churn schedules of the experiment, parameterized by duration.
/// Each returns `(name, schedule, judged target)`.
fn schedules(duration_ms: u64) -> Vec<(&'static str, FaultSchedule, ProcessId)> {
    let d = duration_ms;
    let mut minority = ProcessSet::empty();
    minority.insert(p(2));
    minority.insert(p(3));
    vec![
        (
            "crash",
            FaultSchedule::new().at(ms(d / 2), Fault::Crash(p(2))),
            p(2),
        ),
        (
            "crash+recover+crash",
            FaultSchedule::new()
                .at(ms(d / 4), Fault::Crash(p(2)))
                .at(ms(d / 2), Fault::Recover(p(2)))
                .at(ms(3 * d / 4), Fault::Crash(p(2))),
            p(2),
        ),
        (
            "partition→crash",
            FaultSchedule::new()
                .at(ms(d / 4), Fault::Partition(minority))
                .at(ms(d / 2), Fault::Heal)
                .at(ms(3 * d / 4), Fault::Crash(p(3))),
            p(3),
        ),
    ]
}

/// One seed's outcome: the observer's report about the judged target,
/// plus whether *every* pair's monitor matched its batch shadow.
fn run_one<E: ArrivalEstimator + Clone>(
    prototype: E,
    schedule: FaultSchedule,
    target: ProcessId,
    seed: u64,
    duration_ms: u64,
) -> (QosReport, bool) {
    let scenario = OnlineScenario {
        n: 4,
        duration: ms(duration_ms),
        seed,
        schedule,
        ..OnlineScenario::default()
    };
    let n = scenario.n;
    let mut runner = OnlineRunner::new(prototype, scenario).with_batch_shadow();
    // Drive the stream tick by tick — the point of the experiment is
    // that the numbers exist *during* the run, not only at the end.
    while runner.step().is_some() {}
    let mut matches = true;
    for a in 0..n {
        for b in 0..n {
            matches &= runner.monitor_matches_batch(p(a), p(b));
        }
    }
    let report = runner
        .report(p(0), target)
        .expect("observer 0 judges the target");
    (report, matches)
}

fn mean_report(reports: &[QosReport]) -> QosReport {
    let n = reports.len() as f64;
    let det: Vec<u64> = reports
        .iter()
        .filter_map(|r| r.detection_time.map(rfd_net::Nanos::as_nanos))
        .collect();
    QosReport {
        detection_time: if det.is_empty() {
            None
        } else {
            Some(Nanos::from_nanos(
                det.iter().sum::<u64>() / det.len() as u64,
            ))
        },
        mistakes: (reports.iter().map(|r| f64::from(r.mistakes)).sum::<f64>() / n) as u32,
        mistake_rate: reports.iter().map(|r| r.mistake_rate).sum::<f64>() / n,
        avg_mistake_duration: Nanos::from_nanos(
            (reports
                .iter()
                .map(|r| r.avg_mistake_duration.as_nanos() as f64)
                .sum::<f64>()
                / n) as u64,
        ),
        longest_mistake: reports
            .iter()
            .map(|r| r.longest_mistake)
            .max()
            .unwrap_or(Nanos::ZERO),
        query_accuracy: reports.iter().map(|r| r.query_accuracy).sum::<f64>() / n,
    }
}

fn line_up() -> Vec<(&'static str, EstimatorProto)> {
    vec![
        (
            "fixed-400ms",
            EstimatorProto::Fixed(FixedTimeout::new(ms(400))),
        ),
        (
            "chen(α=50ms)",
            EstimatorProto::Chen(ChenEstimator::new(ms(50), 32, ms(500))),
        ),
        (
            "jacobson(β=4)",
            EstimatorProto::Jacobson(JacobsonEstimator::new(4.0, ms(500))),
        ),
        (
            "φ-accrual(φ=3)",
            EstimatorProto::Phi(PhiAccrual::new(3.0, 64, ms(500))),
        ),
    ]
}

/// A local closed sum so one sweep closure covers the heterogeneous
/// line-up (same pattern as [`crate::estimators::Estimators`], kept
/// separate to stay `Clone + Send` without touching the shared enum).
#[derive(Clone, Debug)]
enum EstimatorProto {
    Fixed(FixedTimeout),
    Chen(ChenEstimator),
    Jacobson(JacobsonEstimator),
    Phi(PhiAccrual),
}

impl EstimatorProto {
    fn run(
        &self,
        schedule: FaultSchedule,
        target: ProcessId,
        seed: u64,
        duration_ms: u64,
    ) -> (QosReport, bool) {
        match self.clone() {
            EstimatorProto::Fixed(e) => run_one(e, schedule, target, seed, duration_ms),
            EstimatorProto::Chen(e) => run_one(e, schedule, target, seed, duration_ms),
            EstimatorProto::Jacobson(e) => run_one(e, schedule, target, seed, duration_ms),
            EstimatorProto::Phi(e) => run_one(e, schedule, target, seed, duration_ms),
        }
    }
}

/// Runs E11 and returns the result table.
#[must_use]
pub fn run_experiment(quick: bool) -> Table {
    let (seeds, duration_ms) = if quick { (2, 12_000) } else { (4, 30_000) };
    let mut table = Table::new(
        "E11 — online detection under churn (n=4, observer p0, streaming driver, \
         period 100ms, delay 2–10ms)",
        &[
            "schedule",
            "estimator",
            "T_D (final crash)",
            "λ_M (mistakes)",
            "T_M (duration)",
            "P_A (accuracy)",
            "=batch",
        ],
    );
    for (schedule_name, schedule, target) in schedules(duration_ms) {
        for (est_name, proto) in line_up() {
            let outcomes: Vec<(QosReport, bool)> = Campaign::sweep(0..seeds)
                .map(|seed| proto.run(schedule.clone(), target, seed, duration_ms));
            let all_match = outcomes.iter().all(|(_, m)| *m);
            let reports: Vec<QosReport> = outcomes.into_iter().map(|(r, _)| r).collect();
            let r = mean_report(&reports);
            table.push(vec![
                schedule_name.into(),
                est_name.into(),
                r.detection_time
                    .map_or("missed".to_string(), |d| format!("{}ms", d.as_millis())),
                format!("{:.3}/s", r.mistake_rate),
                format!("{}ms", r.avg_mistake_duration.as_millis()),
                format!("{:.4}", r.query_accuracy),
                if all_match {
                    "yes".into()
                } else {
                    "NO".to_string()
                },
            ]);
        }
    }
    table
}

/// E11b — membership under churn: the same fault schedules against the
/// view-based membership service, observed live by the churn-capable
/// [`rfd_net::online::MembershipWatcher`]. Crashes must be excluded with
/// bounded latency; a partitioned minority is excluded *by fiat* (a
/// false exclusion the service converts into accuracy — §1.3).
#[must_use]
pub fn run_membership_ablation(quick: bool) -> Table {
    let (seeds, duration_ms) = if quick { (2, 12_000) } else { (4, 30_000) };
    let mut table = Table::new(
        "E11b — membership under churn (n=4, chen(α=150ms), period 50ms)",
        &[
            "schedule",
            "excl. latency (crashed)",
            "false exclusions",
            "view changes",
        ],
    );
    for (schedule_name, schedule, target) in schedules(duration_ms) {
        let rows: Vec<(Option<u64>, usize, u64)> = Campaign::sweep(0..seeds).map(|seed| {
            let scenario = OnlineScenario {
                n: 4,
                period: ms(50),
                duration: ms(duration_ms),
                sample_every: ms(1),
                seed,
                schedule: schedule.clone(),
                ..OnlineScenario::default()
            };
            let report = run_membership_churn(ChenEstimator::new(ms(150), 16, ms(600)), &scenario);
            (
                report.exclusion_latency[target.index()].map(rfd_net::Nanos::as_millis),
                report.false_exclusions.len(),
                report.view_changes,
            )
        });
        let n = rows.len() as u64;
        let latencies: Vec<u64> = rows.iter().filter_map(|(l, _, _)| *l).collect();
        let latency = if latencies.is_empty() {
            "never".to_string()
        } else {
            format!(
                "{}ms",
                latencies.iter().sum::<u64>() / latencies.len() as u64
            )
        };
        let false_exclusions =
            rows.iter().map(|(_, f, _)| *f as u64).sum::<u64>() as f64 / n as f64;
        let view_changes = rows.iter().map(|(_, _, v)| *v).sum::<u64>() / n;
        table.push(vec![
            schedule_name.into(),
            latency,
            format!("{false_exclusions:.1}"),
            format!("{view_changes}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_table_is_complete_and_streaming_matches_batch_everywhere() {
        let table = run_experiment(true);
        assert_eq!(table.len(), 12, "3 schedules × 4 estimators");
        let rendered = table.render();
        assert!(
            !rendered.contains("NO"),
            "incremental QoS must equal batch finalize exactly:\n{rendered}"
        );
        assert!(
            !rendered.contains("missed"),
            "every schedule ends in a detectable final crash:\n{rendered}"
        );
    }

    #[test]
    fn e11_churn_schedule_is_detected_after_recovery() {
        // The crash→recover→crash schedule: the detector must clear the
        // first outage and still detect the final crash promptly — the
        // Jacobson regression scenario end to end.
        let (_, schedule, target) = schedules(12_000).swap_remove(1);
        let (report, matches) = run_one(
            JacobsonEstimator::new(4.0, ms(500)),
            schedule,
            target,
            1,
            12_000,
        );
        assert!(matches);
        let td = report.detection_time.expect("final crash detected");
        assert!(td.as_millis() < 2_000, "T_D = {td} (report {report:?})");
        assert!(report.mistakes >= 1, "the transient outage is a mistake");
    }

    #[test]
    fn e11b_membership_partition_forces_false_exclusions() {
        let table = run_membership_ablation(true);
        assert_eq!(table.len(), 3);
        // Assert on the underlying report, not the rendered text: the
        // partition schedule must force at least one by-fiat exclusion
        // (the minority side was up), and since those exclusions precede
        // the later crash they must NOT masquerade as detection latency.
        let (_, schedule, target) = schedules(12_000).swap_remove(2);
        let scenario = OnlineScenario {
            n: 4,
            period: ms(50),
            duration: ms(12_000),
            sample_every: ms(1),
            seed: 0,
            schedule,
            ..OnlineScenario::default()
        };
        let report = run_membership_churn(ChenEstimator::new(ms(150), 16, ms(600)), &scenario);
        assert!(
            !report.false_exclusions.is_empty(),
            "{:?}",
            report.false_exclusions
        );
        assert!(
            report.false_exclusions.contains(target) || report.false_exclusions.contains(p(2)),
            "a minority member is excluded by fiat: {:?}",
            report.false_exclusions
        );
        assert_eq!(
            report.exclusion_latency[target.index()],
            None,
            "a pre-crash exclusion is not a crash detection"
        );
    }
}
