//! E14 — snapshot fast rejoin vs full-suffix replay.
//!
//! E13 showed post-heal state transfer re-syncing a re-merged member by
//! replaying the log suffix it missed — a cost that grows **linearly**
//! with the length of the outage. E14 measures the compaction answer
//! ([`rfd_net::service::CompactionPolicy`]): the majority folds
//! every-member-acked prefixes into a chained digest, and a rejoiner
//! older than the retained tail installs a view-stamped snapshot
//! instead of replaying history, so its transfer cost tracks the
//! retained tail — **flat** in the outage length.
//!
//! Per estimator, the same single-node partition heals after a *short*
//! and a *long* hold (the long outage accumulates ~10× the missed
//! decisions, ~6× in `--quick`), once with compaction
//! (`mode = snapshot`) and once without (`mode = suffix`). Each cell
//! reports the decisions transferred to the rejoiner, the encoded
//! state-transfer bytes served fleet-wide, the snapshot count, and the
//! rejoin latency (heal → every live replica back at the pre-heal log
//! length). Gates, asserted per estimator:
//!
//! * suffix-mode transfer bytes grow with the missed history (≥ 3×
//!   across the holds) — the linear baseline;
//! * snapshot-mode transfer bytes stay flat within 2× across the same
//!   growth, and undercut the long suffix replay;
//! * snapshot-mode rejoin latency stays flat within 2× too;
//! * every cell: uniform agreement, post-heal convergence, zero
//!   decisions lost, and the snapshot path actually taken (or actually
//!   avoided) per mode.
//!
//! Deterministic per seed, pinned by the tests.

use crate::estimators::Estimators;
use crate::table::Table;
use rfd_core::{ProcessId, ProcessSet};
use rfd_net::clock::Nanos;
use rfd_net::estimator::{ChenEstimator, FixedTimeout, JacobsonEstimator, PhiAccrual};
use rfd_net::online::{Fault, FaultSchedule, OnlineScenario};
use rfd_net::service::{run_service, CompactionPolicy, ServiceReport, ServiceScenario};
use rfd_sim::Campaign;

fn ms(v: u64) -> Nanos {
    Nanos::from_millis(v)
}

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// How many decisions the retained tail keeps in snapshot mode — small
/// against even the short outage, so both holds genuinely exercise the
/// snapshot path.
const RETAIN: u64 = 8;

fn line_up() -> Vec<(&'static str, Estimators)> {
    vec![
        ("fixed-400ms", Estimators::Fixed(FixedTimeout::new(ms(400)))),
        (
            "chen(α=150ms)",
            Estimators::Chen(ChenEstimator::new(ms(150), 16, ms(600))),
        ),
        (
            "jacobson(β=4)",
            Estimators::Jacobson(JacobsonEstimator::new(4.0, ms(600))),
        ),
        (
            "φ-accrual(φ=3)",
            Estimators::Phi(PhiAccrual::new(3.0, 32, ms(600))),
        ),
    ]
}

/// One rejoin scenario: p3 is cut off at 2 s, the majority keeps
/// deciding a continuous workload through the outage, the partition
/// heals after `hold_ms`, and the run drains long enough for the
/// rejoin to complete. `retain` switches the compaction mode.
fn scenario(hold_ms: u64, retain: Option<u64>, seed: u64) -> ServiceScenario {
    let heal_ms = 2_000 + hold_ms;
    let duration_ms = heal_ms + 8_000;
    let mut s = ServiceScenario {
        online: OnlineScenario {
            n: 4,
            period: ms(50),
            duration: ms(duration_ms),
            sample_every: ms(5),
            seed,
            schedule: FaultSchedule::new()
                .at(ms(2_000), Fault::Partition(ProcessSet::singleton(p(3))))
                .at(ms(heal_ms), Fault::Heal),
            heal_merge: true,
            ..OnlineScenario::default()
        },
        ..ServiceScenario::default()
    };
    if let Some(k) = retain {
        s = s.with_compaction(CompactionPolicy::retain_last(k));
    }
    // The workload stops 1 s before the heal: the rejoin then measures
    // pure catch-up, and every transfer byte is catch-up traffic.
    let mut at = 1_000;
    let mut value = 100;
    while at + 1_000 <= heal_ms {
        let client = [0, 1, 2][(value as usize) % 3];
        s = s.command(ms(at), p(client), value);
        at += 300;
        value += 1;
    }
    s
}

/// One cell's reduced metrics.
#[derive(Clone, Copy)]
struct Cell {
    decided: u64,
    transferred: u64,
    bytes: u64,
    snapshots: u64,
    rejoin_ms: u64,
}

/// Gates one cell (agreement, convergence, losslessness, the mode's
/// transfer path actually taken) and reduces the report.
fn gate(label: &str, snapshot_mode: bool, report: &ServiceReport) -> Cell {
    assert!(
        report.agreement_holds(),
        "[{label}] uniform agreement violated"
    );
    assert!(
        report.live_logs_converged(),
        "[{label}] post-heal logs failed to converge"
    );
    assert_eq!(
        report.membership.decisions_lost, 0,
        "[{label}] state transfer discarded decisions"
    );
    if snapshot_mode {
        assert!(
            report.membership.snapshots_sent > 0,
            "[{label}] the rejoiner fell {RETAIN}+ behind yet no snapshot was served: {:?}",
            report.membership
        );
    } else {
        assert_eq!(
            report.membership.snapshots_sent, 0,
            "[{label}] a snapshot without compaction"
        );
    }
    let rejoin_ms = report
        .membership
        .rejoin_latencies
        .last()
        .map(|l| l.as_millis());
    let Some(rejoin_ms) = rejoin_ms else {
        panic!("[{label}] the heal never resolved into a completed rejoin");
    };
    Cell {
        decided: report.decided_len(),
        transferred: report.membership.decisions_transferred,
        bytes: report.membership.sync_bytes_sent,
        snapshots: report.membership.snapshots_sent,
        rejoin_ms,
    }
}

fn mean(values: impl Iterator<Item = u64>, n: u64) -> u64 {
    values.sum::<u64>() / n.max(1)
}

/// Runs E14 and returns the result table.
///
/// # Panics
///
/// Panics if any cell violates its safety gate or the per-estimator
/// sub-linearity contrast fails (see the module docs).
#[must_use]
pub fn run_experiment(quick: bool) -> Table {
    let (seeds, short_hold, long_hold) = if quick {
        (1, 4_000, 24_000)
    } else {
        (2, 6_000, 60_000)
    };
    let mut table = Table::new(
        "E14 — snapshot fast rejoin vs full-suffix replay (n=4, heal-merge, retain-last-8 compaction)",
        &[
            "estimator",
            "outage",
            "mode",
            "decided",
            "transferred",
            "xfer_bytes",
            "snapshots",
            "t_rejoin",
        ],
    );
    for (est_name, proto) in line_up() {
        let mut cells: Vec<(&str, &str, Cell)> = Vec::new();
        for (hold_name, hold_ms) in [("short", short_hold), ("long", long_hold)] {
            for (mode, retain) in [("snapshot", Some(RETAIN)), ("suffix", None)] {
                let label = format!("{est_name}/{hold_name}/{mode}");
                let runs: Vec<Cell> = Campaign::sweep(0..seeds).map(|seed| {
                    let report = run_service(proto.clone(), &scenario(hold_ms, retain, seed));
                    gate(&label, retain.is_some(), &report)
                });
                let n = runs.len() as u64;
                let cell = Cell {
                    decided: mean(runs.iter().map(|c| c.decided), n),
                    transferred: mean(runs.iter().map(|c| c.transferred), n),
                    bytes: mean(runs.iter().map(|c| c.bytes), n),
                    snapshots: mean(runs.iter().map(|c| c.snapshots), n),
                    rejoin_ms: mean(runs.iter().map(|c| c.rejoin_ms), n),
                };
                table.push(vec![
                    est_name.into(),
                    hold_name.into(),
                    mode.into(),
                    format!("{}", cell.decided),
                    format!("{}", cell.transferred),
                    format!("{}", cell.bytes),
                    format!("{}", cell.snapshots),
                    format!("{}ms", cell.rejoin_ms),
                ]);
                cells.push((hold_name, mode, cell));
            }
        }
        contrast_gate(est_name, &cells);
    }
    table
}

/// The per-estimator sub-linearity contrast over the four cells.
fn contrast_gate(est_name: &str, cells: &[(&str, &str, Cell)]) {
    let find = |hold: &str, mode: &str| -> Cell {
        cells
            .iter()
            .find(|(h, m, _)| *h == hold && *m == mode)
            .map_or_else(
                || panic!("[{est_name}] missing cell {hold}/{mode}"),
                |(_, _, c)| *c,
            )
    };
    let snap_short = find("short", "snapshot");
    let snap_long = find("long", "snapshot");
    let suffix_short = find("short", "suffix");
    let suffix_long = find("long", "suffix");
    assert!(
        suffix_long.bytes >= 3 * suffix_short.bytes,
        "[{est_name}] suffix replay must grow with the missed history: \
         {} bytes (short) vs {} bytes (long)",
        suffix_short.bytes,
        suffix_long.bytes
    );
    assert!(
        snap_long.bytes <= 2 * snap_short.bytes,
        "[{est_name}] snapshot rejoin must stay flat as history grows: \
         {} bytes (short) vs {} bytes (long)",
        snap_short.bytes,
        snap_long.bytes
    );
    assert!(
        snap_long.bytes < suffix_long.bytes,
        "[{est_name}] the long-outage snapshot must undercut the suffix replay: \
         {} vs {} bytes",
        snap_long.bytes,
        suffix_long.bytes
    );
    assert!(
        snap_long.rejoin_ms <= 2 * snap_short.rejoin_ms.max(100),
        "[{est_name}] snapshot rejoin latency must stay flat as history grows: \
         {}ms (short) vs {}ms (long)",
        snap_short.rejoin_ms,
        snap_long.rejoin_ms
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_contrast_holds_on_every_estimator() {
        // `gate` + `contrast_gate` assert the whole claim per cell and
        // per estimator; here additionally: the table has all 16 rows
        // and every snapshot cell actually counted a snapshot.
        let table = run_experiment(true);
        assert_eq!(table.len(), 16, "4 estimators × 2 outages × 2 modes");
    }

    #[test]
    fn e14_cells_are_deterministic_per_seed() {
        let sc = scenario(4_000, Some(RETAIN), 7);
        let a = run_service(ChenEstimator::new(ms(150), 16, ms(600)), &sc);
        let b = run_service(ChenEstimator::new(ms(150), 16, ms(600)), &sc);
        assert_eq!(a.logs, b.logs);
        assert_eq!(a.bases, b.bases);
        assert_eq!(a.membership.snapshots_sent, b.membership.snapshots_sent);
        assert_eq!(a.membership.sync_bytes_sent, b.membership.sync_bytes_sent);
        assert_eq!(a.membership.rejoin_latencies, b.membership.rejoin_latencies);
        assert!(
            a.membership.snapshots_sent > 0,
            "the outage forces a snapshot"
        );
    }
}
