//! E5 — §6.3: among realistic detectors, `S` collapses into `P`
//! (`S ∩ R ⊂ P`).
//!
//! Every oracle in the battery is classified (over random patterns) and
//! checked for realism. The table shows the collapse: each oracle that
//! is Strong **and** realistic is also Perfect; the only Strong-not-
//! Perfect oracles are the clairvoyant ones, which fail the realism
//! check.

use crate::table::Table;
use rfd_core::oracles::{
    EventuallyPerfectOracle, EventuallyStrongOracle, MaraboutOracle, Oracle, PerfectOracle,
    RankedOracle, StrongOracle,
};
use rfd_core::realism::{check_realism, RealismCheck};
use rfd_core::{class_report, CheckParams, ClassId, FailurePattern, Time};
use rfd_sim::campaign::{seed_rng, Campaign};

const HORIZON: u64 = 500;

struct OracleRow {
    name: &'static str,
    in_p: usize,
    in_s: usize,
    in_evp: usize,
    in_evs: usize,
    in_pl: usize,
    runs: usize,
    realistic: bool,
}

/// Per-seed class membership bits: `(P, S, ◇P, ◇S, P<)`.
type Membership = (bool, bool, bool, bool, bool);

fn classify<O: Oracle<Value = rfd_core::ProcessSet> + Sync>(
    oracle: &O,
    stream: u64,
    runs: usize,
) -> OracleRow {
    let horizon = Time::new(HORIZON);
    let params = CheckParams::with_margin(horizon, 50);
    let memberships: Vec<Membership> = Campaign::sweep(0..runs as u64).map(|seed| {
        let mut rng = seed_rng(stream, seed);
        let pattern = FailurePattern::random(6, 5, Time::new(HORIZON / 2), &mut rng);
        let h = oracle.generate(&pattern, horizon, seed);
        let report = class_report(&pattern, &h, &params);
        (
            report.is_in(ClassId::Perfect),
            report.is_in(ClassId::Strong),
            report.is_in(ClassId::EventuallyPerfect),
            report.is_in(ClassId::EventuallyStrong),
            report.is_in(ClassId::PartiallyPerfect),
        )
    });
    let battery = RealismCheck::new(horizon, 4, 16);
    let mut rng = seed_rng(stream ^ 0x5EA1, 0);
    OracleRow {
        name: oracle.name(),
        in_p: memberships.iter().filter(|m| m.0).count(),
        in_s: memberships.iter().filter(|m| m.1).count(),
        in_evp: memberships.iter().filter(|m| m.2).count(),
        in_evs: memberships.iter().filter(|m| m.3).count(),
        in_pl: memberships.iter().filter(|m| m.4).count(),
        runs,
        realistic: check_realism(oracle, 5, 15, &battery, &mut rng).is_ok(),
    }
}

/// Runs E5 and returns the result table.
#[must_use]
pub fn run_experiment(quick: bool) -> Table {
    let runs = if quick { 8 } else { 30 };
    let mut table = Table::new(
        "E5 — the collapse S ∩ R ⊂ P (§6.3): class membership × realism",
        &["oracle", "P", "S", "◇P", "◇S", "P<", "realistic"],
    );
    let rows = vec![
        classify(&PerfectOracle::new(5, 3), 0xE5_01, runs),
        classify(
            &EventuallyPerfectOracle::new(Time::new(80), 5, 3),
            0xE5_02,
            runs,
        ),
        classify(&EventuallyStrongOracle::new(4), 0xE5_03, runs),
        classify(&RankedOracle::new(5, 3), 0xE5_04, runs),
        classify(&StrongOracle::new(4, Time::new(60)), 0xE5_05, runs),
        classify(&MaraboutOracle::new(), 0xE5_06, runs),
    ];
    for r in rows {
        table.push(vec![
            r.name.into(),
            format!("{}/{}", r.in_p, r.runs),
            format!("{}/{}", r.in_s, r.runs),
            format!("{}/{}", r.in_evp, r.runs),
            format!("{}/{}", r.in_evs, r.runs),
            format!("{}/{}", r.in_pl, r.runs),
            if r.realistic {
                "yes"
            } else {
                "NO (clairvoyant)"
            }
            .into(),
        ]);
    }
    table
}

/// Checks the collapse statement on the classification data: every
/// realistic oracle that was always Strong was also always Perfect.
#[must_use]
pub fn collapse_holds(quick: bool) -> bool {
    let runs = if quick { 8 } else { 30 };
    let perfect = classify(&PerfectOracle::new(5, 3), 0xE5_01, runs);
    let strong = classify(&StrongOracle::new(4, Time::new(60)), 0xE5_05, runs);
    let marabout = classify(&MaraboutOracle::new(), 0xE5_06, runs);
    // Realistic & Strong ⇒ Perfect…
    let realistic_ok = perfect.realistic && perfect.in_s == runs && perfect.in_p == runs;
    // …and each Strong-not-Perfect oracle is non-realistic.
    let strong_gap = strong.in_s == runs && strong.in_p < runs && !strong.realistic;
    let marabout_gap = marabout.in_s == runs && marabout.in_p < runs && !marabout.realistic;
    realistic_ok && strong_gap && marabout_gap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_collapse_statement_holds() {
        assert!(collapse_holds(true));
    }

    #[test]
    fn e5_table_has_all_oracles() {
        let table = run_experiment(true);
        assert_eq!(table.len(), 6);
        let text = table.render();
        assert!(text.contains("marabout"));
        assert!(text.contains("NO (clairvoyant)"));
    }
}
