//! E6 — §6.1: the impact of realism.
//!
//! The trivial Marabout algorithm solves consensus for any number of
//! failures when run over the clairvoyant `M`, and the realism checker
//! rejects `M` on the paper's own pattern pair. Run over a realistic
//! Perfect oracle instead, the same algorithm loses termination whenever
//! the presumed leader crashes before spreading its value — the lower
//! bound does not apply to `M` precisely because `M ∉ R`.

use crate::table::{pct, Table};
use rfd_algo::check::check_consensus;
use rfd_algo::consensus::{ConsensusAutomaton, MaraboutConsensus};
use rfd_core::oracles::{MaraboutOracle, Oracle, PerfectOracle};
use rfd_core::realism::{check_realism, marabout_pair, RealismCheck};
use rfd_core::{FailurePattern, ProcessId, Time};
use rfd_sim::campaign::{seed_rng, Campaign, RunPlan};
use rfd_sim::{ticks_for_rounds, SimConfig, StopCondition};

const ROUNDS: u64 = 500;

fn marabout_runs(
    use_marabout_oracle: bool,
    leader_crash: bool,
    seeds: u64,
    stream: u64,
) -> (usize, usize, usize) {
    let n = 5;
    let props: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
    let horizon = ticks_for_rounds(n, ROUNDS);
    let marabout = MaraboutOracle::new();
    // Slow detection so the leader choice happens before suspicion.
    let realistic = PerfectOracle::new(50, 0);
    let base = SimConfig::new(0, ROUNDS).with_stop(StopCondition::EachCorrectOutput(1));
    let verdicts: Vec<(bool, bool)> = Campaign::new(base).seeds(0..seeds).run(
        |seed, config| {
            let pattern = if leader_crash {
                FailurePattern::new(n).with_crash(ProcessId::new(0), Time::new(2))
            } else {
                let mut rng = seed_rng(stream, seed);
                FailurePattern::random(n, n - 1, Time::new(ROUNDS), &mut rng)
            };
            let oracle = if use_marabout_oracle {
                marabout.generate(&pattern, horizon, seed)
            } else {
                realistic.generate(&pattern, horizon, seed)
            };
            RunPlan {
                automata: ConsensusAutomaton::<MaraboutConsensus<u64>>::fleet(&props),
                pattern,
                oracle,
                config,
            }
        },
        |_seed, pattern, result| {
            let v = check_consensus(pattern, &result.trace, &props);
            (
                v.termination.is_ok(),
                v.uniform_agreement.is_ok() && v.validity.is_ok(),
            )
        },
    );
    let terminated = verdicts.iter().filter(|(t, _)| *t).count();
    let agreed = verdicts.iter().filter(|(_, a)| *a).count();
    (terminated, agreed, seeds as usize)
}

/// Runs E6 and returns the result table.
#[must_use]
pub fn run_experiment(quick: bool) -> Table {
    let seeds = if quick { 10 } else { 40 };
    let mut table = Table::new(
        "E6 — the Marabout algorithm with and without clairvoyance (§6.1)",
        &[
            "oracle",
            "pattern",
            "terminates",
            "safe (agreement+validity)",
        ],
    );
    let (t, a, r) = marabout_runs(true, false, seeds, 0xE6_01);
    table.push(vec![
        "M (clairvoyant)".into(),
        "random, f ≤ n−1".into(),
        pct(t, r),
        pct(a, r),
    ]);
    let (t, a, r) = marabout_runs(true, true, seeds, 0xE6_02);
    table.push(vec![
        "M (clairvoyant)".into(),
        "leader crashes early".into(),
        pct(t, r),
        pct(a, r),
    ]);
    let (t, a, r) = marabout_runs(false, true, seeds, 0xE6_03);
    table.push(vec![
        "P (realistic)".into(),
        "leader crashes early".into(),
        pct(t, r),
        pct(a, r),
    ]);
    // The realism verdicts.
    let battery = RealismCheck::new(Time::new(400), 4, 16);
    let (f1, f2, t_pref) = marabout_pair(5, Time::new(10));
    let m_realistic =
        rfd_core::realism::check_pair(&MaraboutOracle::new(), &f1, &f2, t_pref, &battery).is_ok();
    let p_realistic = {
        let mut rng = seed_rng(0xE6_04, 0);
        check_realism(&PerfectOracle::new(5, 3), 5, 15, &battery, &mut rng).is_ok()
    };
    table.push(vec![
        "M (clairvoyant)".into(),
        "§3.2.2 pattern pair".into(),
        "-".into(),
        if m_realistic {
            "realistic"
        } else {
            "NOT realistic"
        }
        .into(),
    ]);
    table.push(vec![
        "P (realistic)".into(),
        "realism battery".into(),
        "-".into(),
        if p_realistic {
            "realistic"
        } else {
            "NOT realistic"
        }
        .into(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_marabout_succeeds_realistic_blocks() {
        let table = run_experiment(true);
        let text = table.render();
        let m_rows: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("M (clairvoyant)") && l.contains("%"))
            .collect();
        for l in &m_rows {
            assert!(l.contains("100.0%"), "M-based runs must succeed: {l}");
        }
        let p_row: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("P (realistic)") && l.contains("leader"))
            .collect();
        assert!(
            p_row[0].contains("0.0%"),
            "realistic leader-crash blocks: {}",
            p_row[0]
        );
        assert!(text.contains("NOT realistic"));
    }
}
