//! E15 — the adversarial weather catalogue: estimator zoo × composed
//! weathers.
//!
//! E7–E14 stress the stack with fail-stop churn: crashes, symmetric
//! partitions, heals. Real deployments misbehave in richer ways — links
//! fail in one direction, flap, duplicate and reorder traffic; nodes go
//! *gray* (alive but slow); clocks drift. E15 sweeps the full estimator
//! line-up across the [`rfd_net::weather`] catalogue and tabulates
//! which QoS claims survive which weathers, with the service-safety
//! gates asserted on **every** cell:
//!
//! * uniform agreement across all live logs (no value disagreement at
//!   any index);
//! * no log forks (live logs converge once the weather passes);
//! * no acked decision lost.
//!
//! Each cell also runs the detector-only fleet under the same weather
//! and reduces the observer→target QoS pair (`p0` watches `p1`, both
//! alive throughout every weather): mistake count, mean and longest
//! mistake duration, query accuracy. The per-estimator contrast gate
//! pins the headline claim: a crash-only schedule never exposes a
//! false-suspicion tail on a live pair (`λ_M = 0`, `longest_M = 0`),
//! while gray failure — heartbeats arriving, but late — degrades it for
//! **every** estimator, and flapping degrades at least the aggressive
//! fixed timeout. Deterministic per seed, pinned by the tests.

use crate::estimators::Estimators;
use crate::table::Table;
use rfd_core::{ProcessId, ProcessSet};
use rfd_net::clock::{ClockSkew, Nanos};
use rfd_net::estimator::{ChenEstimator, FixedTimeout, JacobsonEstimator, PhiAccrual};
use rfd_net::online::OnlineScenario;
use rfd_net::qos::QosReport;
use rfd_net::service::{ServiceReport, ServiceScenario};
use rfd_net::weather::{run_weather_service, weather_online_runner, Weather};
use rfd_sim::Campaign;

fn ms(v: u64) -> Nanos {
    Nanos::from_millis(v)
}

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// The QoS pair every cell reduces: `OBSERVER` watches `TARGET`. Both
/// stay alive under every weather, so any suspicion on this pair is a
/// mistake by definition.
const OBSERVER: usize = 0;
const TARGET: usize = 1;

/// The estimator zoo (E14's line-up: one aggressive fixed baseline plus
/// the three adaptive estimators, all capped at 600 ms).
fn line_up() -> Vec<(&'static str, Estimators)> {
    vec![
        ("fixed-400ms", Estimators::Fixed(FixedTimeout::new(ms(400)))),
        (
            "chen(α=150ms)",
            Estimators::Chen(ChenEstimator::new(ms(150), 16, ms(600))),
        ),
        (
            "jacobson(β=4)",
            Estimators::Jacobson(JacobsonEstimator::new(4.0, ms(600))),
        ),
        (
            "φ-accrual(φ=3)",
            Estimators::Phi(PhiAccrual::new(3.0, 32, ms(600))),
        ),
    ]
}

/// The weather catalogue. Active windows sit inside 2–7 s of the 12 s
/// run so every weather has passed with ≥ 5 s of calm left for the
/// fleet to reconverge before the gates fire.
fn catalogue() -> Vec<(&'static str, Weather)> {
    let zone = {
        let mut z = ProcessSet::singleton(p(3));
        z.insert(p(4));
        z
    };
    vec![
        // The fail-stop baseline: one clean crash outside the QoS pair.
        (
            "crash-only",
            Weather::new().correlated_crash(ProcessSet::singleton(p(4)), ms(4_000), None),
        ),
        // p1's heartbeats to p0 vanish; every other direction flows.
        (
            "one-way",
            Weather::new().one_way(
                ProcessSet::singleton(p(TARGET)),
                ProcessSet::singleton(p(OBSERVER)),
                ms(3_000),
                Some(ms(7_000)),
            ),
        ),
        // p0 ↔ p1 blocks and heals on a 400 ms square wave.
        (
            "flapping",
            Weather::new().flap(p(OBSERVER), p(TARGET), ms(400), ms(3_000), ms(7_000)),
        ),
        // 30% of all forwarded datagrams are cloned for the whole run.
        (
            "duplication",
            Weather::new().duplicate(300, ms(2_000), None),
        ),
        // 20% of arrivals held until 3 younger datagrams overtake (or
        // 40 ms passes) — bounded out-of-order delivery.
        (
            "reordering",
            Weather::new().reorder(200, 3, ms(40), ms(2_000), None),
        ),
        // p1 goes gray: alive and sending, but 900 ms late — past every
        // estimator's 600 ms cap, the slow-but-alive worst case.
        (
            "gray",
            Weather::new().gray(p(TARGET), ms(900), ms(3_000), Some(ms(7_000))),
        ),
        // p1's clock runs at half rate: locally honest heartbeats,
        // globally 200 ms apart.
        (
            "clock-skew",
            Weather::new().skew(p(TARGET), ClockSkew::ratio(1, 2)),
        ),
        // A whole zone ({p3, p4}) fails as one event and recovers as one.
        (
            "zone-crash",
            Weather::new().correlated_crash(zone, ms(4_000), Some(ms(7_000))),
        ),
    ]
}

/// The shared fleet shape: n=5 (a 3-node majority survives the
/// correlated zone crash), 100 ms heartbeats, 12 s of virtual time.
fn base_online(seed: u64) -> OnlineScenario {
    OnlineScenario {
        n: 5,
        period: ms(100),
        duration: ms(12_000),
        sample_every: ms(5),
        seed,
        heal_merge: true,
        ..OnlineScenario::default()
    }
}

/// The decision-service workload under `weather`: commands every 500 ms
/// from the three always-majority nodes, spanning calm, weather, and
/// recovery phases.
fn scenario(weather: &Weather, seed: u64) -> ServiceScenario {
    let mut s = ServiceScenario {
        online: weather.apply_to(base_online(seed)),
        ..ServiceScenario::default()
    };
    let mut at = 1_000;
    let mut value = 500;
    while at <= 9_000 {
        s = s.command(ms(at), p((value as usize) % 3), value);
        at += 500;
        value += 1;
    }
    s
}

/// One cell's reduced metrics: service-side decisions plus the
/// observer→target QoS pair.
#[derive(Clone, Copy)]
struct Cell {
    decided: u64,
    mistakes: u32,
    avg_mistake: Nanos,
    longest_mistake: Nanos,
    accuracy: f64,
}

/// Gates one cell's service report: the three safety properties every
/// weather must leave intact.
fn gate(label: &str, report: &ServiceReport) {
    assert!(
        report.agreement_holds(),
        "[{label}] uniform agreement violated under weather"
    );
    assert!(
        report.live_logs_converged(),
        "[{label}] live logs forked and failed to reconverge"
    );
    assert_eq!(
        report.membership.decisions_lost, 0,
        "[{label}] the weather cost an acked decision"
    );
    assert!(
        report.decided_len() >= 1,
        "[{label}] the service decided nothing all run"
    );
}

/// Runs the detector-only fleet under `weather` and reduces the
/// observer→target pair.
fn qos_pair(proto: Estimators, weather: &Weather, seed: u64) -> QosReport {
    let mut runner = weather_online_runner(proto, weather.apply_to(base_online(seed)));
    runner.run_to_end();
    runner
        .report(p(OBSERVER), p(TARGET))
        .expect("the observer pair is distinct and monitored")
}

fn mean_u64(values: impl Iterator<Item = u64>, n: u64) -> u64 {
    values.sum::<u64>() / n.max(1)
}

/// Runs E15 and returns the result table.
///
/// # Panics
///
/// Panics if any cell violates a safety gate or the per-estimator
/// crash-vs-gray contrast fails (see the module docs).
#[must_use]
pub fn run_experiment(quick: bool) -> Table {
    let seeds = if quick { 1 } else { 2 };
    let mut table = Table::new(
        "E15 — adversarial weather catalogue (n=5, period 100ms, p0 observes p1; agreement + no-fork gated per cell)",
        &[
            "estimator",
            "weather",
            "decided",
            "λ_M (mistakes)",
            "T_M (mean)",
            "longest_M",
            "P_A (accuracy)",
        ],
    );
    let mut flap_degraded_someone = false;
    for (est_name, proto) in line_up() {
        let mut cells: Vec<(&'static str, Cell)> = Vec::new();
        for (weather_name, weather) in catalogue() {
            let label = format!("{est_name}/{weather_name}");
            let runs: Vec<Cell> = Campaign::sweep(0..seeds).map(|seed| {
                let report = run_weather_service(proto.clone(), &scenario(&weather, seed));
                gate(&label, &report);
                let qos = qos_pair(proto.clone(), &weather, seed);
                Cell {
                    decided: report.decided_len(),
                    mistakes: qos.mistakes,
                    avg_mistake: qos.avg_mistake_duration,
                    longest_mistake: qos.longest_mistake,
                    accuracy: qos.query_accuracy,
                }
            });
            let n = runs.len() as u64;
            let cell = Cell {
                decided: mean_u64(runs.iter().map(|c| c.decided), n),
                mistakes: runs.iter().map(|c| c.mistakes).max().unwrap_or(0),
                avg_mistake: Nanos::from_nanos(mean_u64(
                    runs.iter().map(|c| c.avg_mistake.as_nanos()),
                    n,
                )),
                longest_mistake: runs
                    .iter()
                    .map(|c| c.longest_mistake)
                    .max()
                    .unwrap_or(Nanos::ZERO),
                accuracy: runs.iter().map(|c| c.accuracy).sum::<f64>() / n as f64,
            };
            table.push(vec![
                est_name.into(),
                weather_name.into(),
                format!("{}", cell.decided),
                format!("{}", cell.mistakes),
                format!("{}ms", cell.avg_mistake.as_millis()),
                format!("{}ms", cell.longest_mistake.as_millis()),
                format!("{:.4}", cell.accuracy),
            ]);
            cells.push((weather_name, cell));
        }
        flap_degraded_someone |= contrast_gate(est_name, &cells);
    }
    assert!(
        flap_degraded_someone,
        "no estimator registered a single mistake under a flapping link"
    );
    table
}

/// The per-estimator crash-vs-gray contrast. Returns whether flapping
/// degraded this estimator (gated in aggregate by the caller).
fn contrast_gate(est_name: &str, cells: &[(&'static str, Cell)]) -> bool {
    let find = |weather: &str| -> Cell {
        cells.iter().find(|(w, _)| *w == weather).map_or_else(
            || panic!("[{est_name}] missing cell {weather}"),
            |(_, c)| *c,
        )
    };
    let baseline = find("crash-only");
    let gray = find("gray");
    let flap = find("flapping");
    assert_eq!(
        baseline.mistakes, 0,
        "[{est_name}] a crash-only schedule must never make the live \
         pair suspect each other"
    );
    assert_eq!(
        baseline.longest_mistake,
        Nanos::ZERO,
        "[{est_name}] crash-only weather exposed a mistake tail"
    );
    assert!(
        gray.mistakes >= 1,
        "[{est_name}] 900ms gray failure past the 600ms cap must \
         register at least one mistake"
    );
    assert!(
        gray.longest_mistake > Nanos::ZERO,
        "[{est_name}] gray failure must expose the longest-mistake tail \
         crash-only never shows"
    );
    flap.mistakes >= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfd_net::online::reports_equal;

    #[test]
    fn e15_catalogue_covers_every_weather_for_every_estimator() {
        // `gate` asserts safety per cell and `contrast_gate` the
        // crash-vs-gray claim per estimator; here additionally: the
        // table is complete.
        let table = run_experiment(true);
        assert_eq!(table.len(), 32, "4 estimators × 8 weathers");
    }

    #[test]
    fn e15_cells_are_deterministic_per_seed() {
        let (_, gray) = catalogue().remove(5);
        let sc = scenario(&gray, 3);
        let a = run_weather_service(ChenEstimator::new(ms(150), 16, ms(600)), &sc);
        let b = run_weather_service(ChenEstimator::new(ms(150), 16, ms(600)), &sc);
        assert_eq!(a.logs, b.logs);
        assert_eq!(a.bases, b.bases);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(
            a.membership.weather_directives,
            b.membership.weather_directives
        );
        assert!(
            a.membership.weather_directives >= 2,
            "the gray on/off directives are counted"
        );
        let qa = qos_pair(
            Estimators::Chen(ChenEstimator::new(ms(150), 16, ms(600))),
            &gray,
            3,
        );
        let qb = qos_pair(
            Estimators::Chen(ChenEstimator::new(ms(150), 16, ms(600))),
            &gray,
            3,
        );
        assert!(reports_equal(&qa, &qb), "QoS timelines replay bitwise");
    }
}
