//! E7 — QoS of adaptive heartbeat detectors (the "realistic look").
//!
//! The Chen–Toueg–Aguilera metrics for the four estimators under a loss
//! sweep: detection time `T_D`, mistake rate `λ_M`, average mistake
//! duration `T_M`, query accuracy `P_A`. The expected shape: the
//! aggressive fixed timeout detects fastest but its accuracy collapses
//! with loss; the adaptive estimators hold accuracy at a modest
//! detection-time premium, with φ-accrual the most loss-tolerant.

use crate::estimators::Estimators;
use crate::table::Table;
use rfd_net::clock::Nanos;
use rfd_net::estimator::{
    ArrivalEstimator, ChenEstimator, FixedTimeout, JacobsonEstimator, PhiAccrual,
};
use rfd_net::qos::{evaluate_qos, QosReport, QosScenario};
use rfd_sim::Campaign;

fn ms(v: u64) -> Nanos {
    Nanos::from_millis(v)
}

fn scenario(loss: f64, seed: u64, duration_ms: u64) -> QosScenario {
    QosScenario {
        period: ms(100),
        loss,
        burst: None,
        min_delay: ms(2),
        max_delay: ms(12),
        crash_at: Some(ms(duration_ms * 3 / 4)),
        duration: ms(duration_ms),
        sample_every: ms(5),
        seed,
    }
}

fn fmt_report(r: &QosReport) -> [String; 4] {
    [
        r.detection_time
            .map_or("missed".to_string(), |d| format!("{}ms", d.as_millis())),
        format!("{:.3}/s", r.mistake_rate),
        format!("{}ms", r.avg_mistake_duration.as_millis()),
        format!("{:.4}", r.query_accuracy),
    ]
}

fn eval<E: ArrivalEstimator + Clone + Sync>(
    proto: E,
    loss: f64,
    seeds: u64,
    duration_ms: u64,
) -> QosReport {
    // Average across seeds by evaluating each and merging simple means.
    let reports: Vec<QosReport> = Campaign::sweep(0..seeds)
        .map(|seed| evaluate_qos(proto.clone(), &scenario(loss, seed, duration_ms)));
    mean_report(&reports)
}

/// Runs E7 and returns the result table.
#[must_use]
pub fn run_experiment(quick: bool) -> Table {
    let (seeds, duration_ms) = if quick { (2, 20_000) } else { (5, 60_000) };
    let mut table = Table::new(
        "E7 — QoS of heartbeat estimators (period 100ms, delay 2–12ms)",
        &[
            "estimator",
            "loss",
            "T_D (detect)",
            "λ_M (mistakes)",
            "T_M (duration)",
            "P_A (accuracy)",
        ],
    );
    for loss in [0.0, 0.05, 0.10, 0.20] {
        let rows: Vec<(&str, QosReport)> = vec![
            (
                "fixed-150ms",
                eval(FixedTimeout::new(ms(150)), loss, seeds, duration_ms),
            ),
            (
                "fixed-500ms",
                eval(FixedTimeout::new(ms(500)), loss, seeds, duration_ms),
            ),
            (
                "chen(α=50ms)",
                eval(
                    ChenEstimator::new(ms(50), 32, ms(500)),
                    loss,
                    seeds,
                    duration_ms,
                ),
            ),
            (
                "jacobson(β=4)",
                eval(
                    JacobsonEstimator::new(4.0, ms(500)),
                    loss,
                    seeds,
                    duration_ms,
                ),
            ),
            (
                "φ-accrual(φ=3)",
                eval(PhiAccrual::new(3.0, 64, ms(500)), loss, seeds, duration_ms),
            ),
        ];
        for (name, r) in rows {
            let [td, lm, tm, pa] = fmt_report(&r);
            table.push(vec![
                name.into(),
                format!("{:.0}%", loss * 100.0),
                td,
                lm,
                tm,
                pa,
            ]);
        }
    }
    table
}

/// E7b — burst-loss ablation: a Gilbert–Elliott channel
/// (mean burst ≈ 5 datagrams, 90% loss inside a burst) against the same
/// estimator line-up. Bursts defeat per-datagram margins; the expected
/// shape is a much larger accuracy spread than under independent loss.
#[must_use]
pub fn run_burst_ablation(quick: bool) -> Table {
    let (seeds, duration_ms) = if quick { (2, 20_000) } else { (5, 60_000) };
    let mut table = Table::new(
        "E7b — Gilbert–Elliott burst-loss ablation (p_enter 2%, p_exit 20%, 90% in-burst loss)",
        &[
            "estimator",
            "T_D (detect)",
            "λ_M (mistakes)",
            "T_M (duration)",
            "P_A (accuracy)",
        ],
    );
    let burst = Some((0.02, 0.20, 0.90));
    let burst_eval = |est: Estimators| {
        let reports: Vec<QosReport> = Campaign::sweep(0..seeds)
            .map(|s| evaluate_qos(est.clone(), &burst_scenario(burst, s, duration_ms)));
        mean_report(&reports)
    };
    for (name, est) in [
        ("fixed-150ms", Estimators::Fixed(FixedTimeout::new(ms(150)))),
        ("fixed-500ms", Estimators::Fixed(FixedTimeout::new(ms(500)))),
        (
            "chen(α=50ms)",
            Estimators::Chen(ChenEstimator::new(ms(50), 32, ms(500))),
        ),
        (
            "jacobson(β=4)",
            Estimators::Jacobson(JacobsonEstimator::new(4.0, ms(500))),
        ),
        (
            "φ-accrual(φ=3)",
            Estimators::Phi(PhiAccrual::new(3.0, 64, ms(500))),
        ),
    ] {
        let r = burst_eval(est);
        let [td, lm, tm, pa] = fmt_report(&r);
        table.push(vec![name.into(), td, lm, tm, pa]);
    }
    table
}

fn burst_scenario(burst: Option<(f64, f64, f64)>, seed: u64, duration_ms: u64) -> QosScenario {
    QosScenario {
        burst,
        crash_at: Some(ms(duration_ms * 3 / 4)),
        duration: ms(duration_ms),
        seed,
        ..QosScenario::default()
    }
}

fn mean_report(reports: &[QosReport]) -> QosReport {
    let n = reports.len() as f64;
    let det: Vec<u64> = reports
        .iter()
        .filter_map(|r| r.detection_time.map(rfd_net::Nanos::as_nanos))
        .collect();
    QosReport {
        detection_time: if det.is_empty() {
            None
        } else {
            Some(Nanos::from_nanos(
                det.iter().sum::<u64>() / det.len() as u64,
            ))
        },
        mistakes: (reports.iter().map(|r| f64::from(r.mistakes)).sum::<f64>() / n) as u32,
        mistake_rate: reports.iter().map(|r| r.mistake_rate).sum::<f64>() / n,
        avg_mistake_duration: Nanos::from_nanos(
            (reports
                .iter()
                .map(|r| r.avg_mistake_duration.as_nanos() as f64)
                .sum::<f64>()
                / n) as u64,
        ),
        longest_mistake: reports
            .iter()
            .map(|r| r.longest_mistake)
            .max()
            .unwrap_or(Nanos::ZERO),
        query_accuracy: reports.iter().map(|r| r.query_accuracy).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_shape_fixed_aggressive_degrades_with_loss() {
        // At 20% loss the aggressive fixed timeout must be less accurate
        // than φ-accrual, while φ keeps near-perfect accuracy.
        let agg = eval(FixedTimeout::new(ms(150)), 0.20, 2, 20_000);
        let phi = eval(PhiAccrual::new(3.0, 64, ms(500)), 0.20, 2, 20_000);
        assert!(
            agg.query_accuracy < phi.query_accuracy,
            "fixed {} vs phi {}",
            agg.query_accuracy,
            phi.query_accuracy
        );
        assert!(agg.mistake_rate > phi.mistake_rate);
    }

    #[test]
    fn e7_everyone_detects_the_crash_without_loss() {
        for r in [
            eval(FixedTimeout::new(ms(150)), 0.0, 2, 20_000),
            eval(ChenEstimator::new(ms(50), 32, ms(500)), 0.0, 2, 20_000),
            eval(JacobsonEstimator::new(4.0, ms(500)), 0.0, 2, 20_000),
            eval(PhiAccrual::new(3.0, 64, ms(500)), 0.0, 2, 20_000),
        ] {
            assert!(r.detection_time.is_some());
            assert!(r.detection_time.unwrap().as_millis() < 2_000);
        }
    }

    #[test]
    fn e7_table_is_complete() {
        let table = run_experiment(true);
        assert_eq!(table.len(), 20, "5 estimators × 4 loss levels");
    }

    #[test]
    fn e7b_burst_table_is_complete_and_everyone_detects() {
        let table = run_burst_ablation(true);
        assert_eq!(table.len(), 5);
        assert!(!table.render().contains("missed"), "{}", table.render());
    }
}
