//! E3 — Proposition 5.1: TRB over `P`, and `P` back from TRB.
//!
//! Three scenarios per system size (correct initiator; initiator crashes
//! before sending; initiator crashes mid-broadcast), plus the TRB→`P`
//! emulation verdict.

use crate::table::{pct, Table};
use rfd_algo::check::check_trb;
use rfd_algo::reduction::TrbEmulation;
use rfd_algo::trb::TrbProcess;
use rfd_core::oracles::{Oracle, PerfectOracle};
use rfd_core::{class_report, CheckParams, ClassId, FailurePattern, ProcessId, Time};
use rfd_sim::campaign::{Campaign, RunPlan};
use rfd_sim::{run, ticks_for_rounds, SimConfig, StopCondition};

const ROUNDS: u64 = 700;

/// What one seeded TRB run produced: `(trb_holds, delivered)` where the
/// delivery is `Some(Some(_))` for the message, `Some(None)` for nil.
type TrbVerdict = (bool, Option<Option<u64>>);

fn trb_scenario(n: usize, crash_at: Option<Time>, seeds: u64) -> (usize, usize, usize, usize) {
    let oracle = PerfectOracle::new(8, 4);
    let initiator = ProcessId::new(0);
    let mut pattern = FailurePattern::new(n);
    if let Some(t) = crash_at {
        pattern.set_crash(initiator, t);
    }
    let base = SimConfig::new(0, ROUNDS).with_stop(StopCondition::EachCorrectOutput(1));
    let verdicts: Vec<TrbVerdict> = Campaign::new(base).seeds(0..seeds).run(
        |seed, config| RunPlan {
            pattern: pattern.clone(),
            oracle: oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), seed),
            automata: TrbProcess::fleet(n, initiator, 777u64),
            config,
        },
        |_seed, pattern, result| {
            let verdict = check_trb(pattern, &result.trace, initiator, &777);
            (
                verdict.is_trb(),
                result.trace.events.first().map(|e| e.value),
            )
        },
    );
    let ok = verdicts.iter().filter(|(ok, _)| *ok).count();
    let msg_runs = verdicts
        .iter()
        .filter(|(_, d)| matches!(d, Some(Some(_))))
        .count();
    let nil_runs = verdicts
        .iter()
        .filter(|(_, d)| matches!(d, Some(None)))
        .count();
    (ok, msg_runs, nil_runs, seeds as usize)
}

/// Runs E3 and returns the result table.
#[must_use]
pub fn run_experiment(quick: bool) -> Table {
    let seeds = if quick { 6 } else { 25 };
    let mut table = Table::new(
        "E3 — terminating reliable broadcast over P (Prop 5.1)",
        &[
            "n",
            "scenario",
            "TRB holds",
            "delivered msg",
            "delivered nil",
        ],
    );
    for n in [4usize, 8] {
        for (label, crash) in [
            ("initiator correct", None),
            ("crash before send", Some(Time::ZERO)),
            ("crash mid-broadcast", Some(Time::new(3))),
        ] {
            let (ok, msg_runs, nil_runs, runs) = trb_scenario(n, crash, seeds);
            table.push(vec![
                n.to_string(),
                label.into(),
                pct(ok, runs),
                msg_runs.to_string(),
                nil_runs.to_string(),
            ]);
        }
    }
    // TRB → P emulation.
    let oracle = PerfectOracle::new(6, 3);
    let pattern = FailurePattern::new(4)
        .with_crash(ProcessId::new(1), Time::new(250))
        .with_crash(ProcessId::new(3), Time::new(600));
    let rounds = 1_500u64;
    let history = oracle.generate(&pattern, ticks_for_rounds(4, rounds), 1);
    let automata = TrbEmulation::fleet(4);
    let result = run(&pattern, &history, automata, &SimConfig::new(1, rounds));
    let emulated = result.emulated.expect("output(P)");
    let end = result.trace.end_time;
    let report = class_report(
        &pattern,
        &emulated,
        &CheckParams::with_margin(end, end.ticks() / 8),
    );
    table.push(vec![
        "4".into(),
        "TRB→P emulation (2 crashes)".into(),
        if report.is_in(ClassId::Perfect) {
            "100.0%".into()
        } else {
            "FAILED".into()
        },
        "-".into(),
        "-".into(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_trb_holds_in_every_scenario() {
        let table = run_experiment(true);
        let text = table.render();
        assert_eq!(table.len(), 7);
        for l in text
            .lines()
            .filter(|l| l.starts_with("| 4") || l.starts_with("| 8"))
        {
            assert!(l.contains("100.0%"), "TRB must hold: {l}");
        }
        // Crash-before-send ⇒ nil always; correct initiator ⇒ msg always.
        let before: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("crash before send"))
            .collect();
        for l in before {
            assert!(l.contains("| 0 "), "no msg deliveries expected: {l}");
        }
    }
}
