//! E9b — ablation: early-stopping vs exhaustive flood-set consensus.
//!
//! The exhaustive flood-set always runs `n` rounds; the early-stopping
//! variant decides after two participant-stable rounds. Expected shape:
//! large latency savings when failures are few (the common case), and
//! convergence of the two as `f → n − 1` (churn keeps resetting the
//! stability streak), at identical correctness.

use crate::table::{pct, Table};
use rfd_algo::check::check_consensus;
use rfd_algo::consensus::{
    ConsensusAutomaton, ConsensusCore, EarlyFloodSetConsensus, FloodSetConsensus,
};
use rfd_core::oracles::{Oracle, PerfectOracle};
use rfd_core::{FailurePattern, ProcessId, Time};
use rfd_sim::campaign::{Campaign, RunPlan};
use rfd_sim::{ticks_for_rounds, SimConfig, StopCondition};

const ROUNDS: u64 = 800;

struct Row {
    terminated: usize,
    latency_sum: u64,
    latency_count: u64,
}

fn sweep<C: ConsensusCore<Val = u64>>(n: usize, f: usize, seeds: u64) -> Row {
    let oracle = PerfectOracle::new(6, 3);
    let horizon = ticks_for_rounds(n, ROUNDS);
    let props: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
    let mut pattern = FailurePattern::new(n);
    for k in 0..f {
        pattern.set_crash(ProcessId::new(k), Time::new(20 + 30 * k as u64));
    }
    let base = SimConfig::new(0, ROUNDS).with_stop(StopCondition::EachCorrectOutput(1));
    let per_seed: Vec<Option<u64>> = Campaign::new(base).seeds(0..seeds).run(
        |seed, config| RunPlan {
            pattern: pattern.clone(),
            oracle: oracle.generate(&pattern, horizon, seed),
            automata: ConsensusAutomaton::<C>::fleet(&props),
            config,
        },
        |seed, pattern, result| {
            let verdict = check_consensus(pattern, &result.trace, &props);
            assert!(
                verdict.uniform_agreement.is_ok() && verdict.validity.is_ok(),
                "ablation must preserve safety: n={n} f={f} seed={seed}: {verdict:?}"
            );
            verdict.termination.is_ok().then(|| {
                result
                    .trace
                    .first_outputs(n)
                    .into_iter()
                    .flatten()
                    .filter(|e| pattern.correct().contains(e.process))
                    .map(|e| e.time.ticks())
                    .max()
                    .unwrap_or(0)
            })
        },
    );
    let mut row = Row {
        terminated: 0,
        latency_sum: 0,
        latency_count: 0,
    };
    for last in per_seed.into_iter().flatten() {
        row.terminated += 1;
        row.latency_sum += last;
        row.latency_count += 1;
    }
    row
}

/// Runs E9b and returns the result table.
#[must_use]
pub fn run_experiment(quick: bool) -> Table {
    let seeds = if quick { 5 } else { 20 };
    let n = 8;
    let mut table = Table::new(
        "E9b — early-stopping ablation (flood-set, n=8, P oracle)",
        &[
            "f",
            "exhaustive: latency",
            "early: latency",
            "speedup",
            "both terminated",
        ],
    );
    for f in [0usize, 1, 2, 4, 7] {
        let full = sweep::<FloodSetConsensus<u64>>(n, f, seeds);
        let early = sweep::<EarlyFloodSetConsensus<u64>>(n, f, seeds);
        let mean = |r: &Row| {
            if r.latency_count > 0 {
                r.latency_sum as f64 / r.latency_count as f64
            } else {
                f64::NAN
            }
        };
        let (mf, me) = (mean(&full), mean(&early));
        table.push(vec![
            f.to_string(),
            format!("{mf:.0} ticks"),
            format!("{me:.0} ticks"),
            format!("{:.2}×", mf / me),
            pct(full.terminated.min(early.terminated), seeds as usize),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9b_early_stopping_wins_when_failure_free() {
        let full = sweep::<FloodSetConsensus<u64>>(8, 0, 5);
        let early = sweep::<EarlyFloodSetConsensus<u64>>(8, 0, 5);
        assert_eq!(full.terminated, 5);
        assert_eq!(early.terminated, 5);
        assert!(
            early.latency_sum < full.latency_sum,
            "early {} vs full {}",
            early.latency_sum,
            full.latency_sum
        );
    }

    #[test]
    fn e9b_table_is_complete() {
        let table = run_experiment(true);
        assert_eq!(table.len(), 5);
    }
}
