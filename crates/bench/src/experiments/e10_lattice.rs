//! E10 — the class lattice: containments and strictness witnesses.
//!
//! Sanity layer under the paper's §2.5 reduction order: every oracle
//! history respects the containment edges, and each edge is *strict* —
//! a concrete history separates the two classes.

use crate::table::Table;
use rfd_core::oracles::{
    EventuallyPerfectOracle, EventuallyStrongOracle, MaraboutOracle, Oracle, PerfectOracle,
    RankedOracle,
};
use rfd_core::{
    class_report, respects_lattice, CheckParams, ClassId, FailurePattern, ProcessId, Time,
    IMPLICATIONS,
};
use rfd_sim::campaign::{seed_rng, Campaign};

const HORIZON: u64 = 500;

/// Runs E10 and returns the result table.
#[must_use]
pub fn run_experiment(quick: bool) -> Table {
    let runs = if quick { 10 } else { 50 };
    let horizon = Time::new(HORIZON);
    let params = CheckParams::with_margin(horizon, 50);
    let mut table = Table::new(
        "E10 — class lattice: containment compliance and strictness",
        &["check", "witness oracle", "verdict"],
    );
    // Containment compliance across the battery.
    let perfect = PerfectOracle::new(5, 3);
    let evp = EventuallyPerfectOracle::new(Time::new(80), 5, 3);
    let evs = EventuallyStrongOracle::new(4);
    let ranked = RankedOracle::new(5, 3);
    let marabout = MaraboutOracle::new();
    let violations: usize = Campaign::sweep(0..runs)
        .map(|seed| {
            let mut rng = seed_rng(0xEA, seed);
            let f = FailurePattern::random(6, 5, Time::new(HORIZON / 2), &mut rng);
            [
                class_report(&f, &perfect.generate(&f, horizon, seed), &params),
                class_report(&f, &evp.generate(&f, horizon, seed), &params),
                class_report(&f, &evs.generate(&f, horizon, seed), &params),
                class_report(&f, &ranked.generate(&f, horizon, seed), &params),
                class_report(&f, &marabout.generate(&f, horizon, seed), &params),
            ]
            .iter()
            .filter(|report| respects_lattice(report).is_err())
            .count()
        })
        .into_iter()
        .sum();
    table.push(vec![
        format!(
            "containment edges {:?} over {} histories",
            IMPLICATIONS.len(),
            runs * 5
        ),
        "battery".into(),
        if violations == 0 {
            "all respected".into()
        } else {
            format!("{violations} VIOLATIONS")
        },
    ]);
    // Strictness witnesses.
    let f_late = FailurePattern::new(4).with_crash(ProcessId::new(1), Time::new(100));
    let m = class_report(&f_late, &marabout.generate(&f_late, horizon, 0), &params);
    table.push(vec![
        "P ⊋ S".into(),
        "marabout".into(),
        verdict(m.is_in(ClassId::Strong) && !m.is_in(ClassId::Perfect)),
    ]);
    let f_top = FailurePattern::new(4).with_crash(ProcessId::new(3), Time::new(100));
    let r = class_report(&f_top, &ranked.generate(&f_top, horizon, 0), &params);
    table.push(vec![
        "P ⊋ P<".into(),
        "partially-perfect".into(),
        verdict(r.is_in(ClassId::PartiallyPerfect) && !r.is_in(ClassId::Perfect)),
    ]);
    let f_one = FailurePattern::new(4).with_crash(ProcessId::new(0), Time::new(50));
    let e = class_report(&f_one, &evs.generate(&f_one, horizon, 0), &params);
    table.push(vec![
        "◇P ⊋ ◇S".into(),
        "eventually-strong".into(),
        verdict(e.is_in(ClassId::EventuallyStrong) && !e.is_in(ClassId::EventuallyPerfect)),
    ]);
    let ep = class_report(&f_one, &evp.generate(&f_one, horizon, 0), &params);
    table.push(vec![
        "P ⊋ ◇P".into(),
        "eventually-perfect".into(),
        verdict(ep.is_in(ClassId::EventuallyPerfect) && !ep.is_in(ClassId::Perfect)),
    ]);
    table
}

fn verdict(ok: bool) -> String {
    if ok {
        "strict (witness found)".into()
    } else {
        "FAILED".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_all_checks_pass() {
        let table = run_experiment(true);
        let text = table.render();
        assert!(text.contains("all respected"), "{text}");
        assert!(!text.contains("FAILED"), "{text}");
        assert!(!text.contains("VIOLATIONS"), "{text}");
    }
}
