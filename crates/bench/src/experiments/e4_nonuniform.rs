//! E4 — §6.2: uniform consensus is strictly harder than
//! correct-restricted consensus.
//!
//! The `P<`-based algorithm is run (a) under random crash patterns and
//! (b) under the paper's witness schedule (`p₀` decides, crashes, and
//! its announcement is delayed past `p₁`'s suspicion). Correct-restricted
//! consensus must always hold; uniform agreement must break in (b).

use crate::table::{pct, Table};
use rfd_algo::check::check_consensus;
use rfd_algo::consensus::{ConsensusAutomaton, RankedConsensus};
use rfd_core::oracles::{Oracle, RankedOracle};
use rfd_core::{FailurePattern, ProcessId, Time};
use rfd_sim::campaign::{seed_rng, Campaign, RunPlan};
use rfd_sim::{ticks_for_rounds, Adversary, SimConfig, StopCondition};

const ROUNDS: u64 = 600;

/// Sweeps one scenario, counting `(correct_restricted_ok, uniform_ok)`.
fn sweep(
    base: SimConfig,
    pattern_of: impl Fn(u64) -> FailurePattern + Sync,
    seeds: u64,
) -> (usize, usize) {
    let oracle = RankedOracle::new(5, 2);
    let n = 4;
    let props: Vec<u64> = vec![100, 200, 300, 400];
    let horizon = ticks_for_rounds(n, ROUNDS);
    let verdicts: Vec<(bool, bool)> = Campaign::new(base).seeds(0..seeds).run(
        |seed, config| {
            let pattern = pattern_of(seed);
            RunPlan {
                oracle: oracle.generate(&pattern, horizon, seed),
                automata: ConsensusAutomaton::<RankedConsensus<u64>>::fleet(&props),
                pattern,
                config,
            }
        },
        |_seed, pattern, result| {
            let v = check_consensus(pattern, &result.trace, &props);
            (
                v.is_correct_restricted_consensus(),
                v.is_uniform_consensus(),
            )
        },
    );
    (
        verdicts.iter().filter(|(cr, _)| *cr).count(),
        verdicts.iter().filter(|(_, uni)| *uni).count(),
    )
}

/// Runs E4 and returns the result table.
#[must_use]
pub fn run_experiment(quick: bool) -> Table {
    let seeds = if quick { 10 } else { 50 };
    let mut table = Table::new(
        "E4 — P< separates uniform from correct-restricted consensus (§6.2)",
        &[
            "scenario",
            "correct-restricted holds",
            "uniform holds",
            "uniform violations",
        ],
    );
    let n = 4;

    // (a) Random patterns, no adversary.
    let (cr_ok, uni_ok) = sweep(
        SimConfig::new(0, ROUNDS).with_stop(StopCondition::EachCorrectOutput(1)),
        |seed| {
            let mut rng = seed_rng(0xE4, seed);
            FailurePattern::random(n, n - 1, Time::new(ROUNDS), &mut rng)
        },
        seeds,
    );
    table.push(vec![
        "random patterns".into(),
        pct(cr_ok, seeds as usize),
        pct(uni_ok, seeds as usize),
        (seeds as usize - uni_ok).to_string(),
    ]);

    // (b) The witness schedule: p0 decides its own value, crashes, and
    // its announcement is held past p1's suspicion.
    let (cr_ok, uni_ok) = sweep(
        SimConfig::new(0, ROUNDS)
            .with_adversary(Adversary::HoldFrom(ProcessId::new(0), Time::new(500)))
            .with_stop(StopCondition::EachCorrectOutput(1)),
        |_seed| FailurePattern::new(n).with_crash(ProcessId::new(0), Time::new(4)),
        seeds,
    );
    table.push(vec![
        "witness: p0 decides+crashes, announcement held".into(),
        pct(cr_ok, seeds as usize),
        pct(uni_ok, seeds as usize),
        (seeds as usize - uni_ok).to_string(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_correct_restricted_always_uniform_breaks_in_witness() {
        let table = run_experiment(true);
        let text = table.render();
        let witness: Vec<&str> = text.lines().filter(|l| l.contains("witness")).collect();
        assert_eq!(witness.len(), 1);
        // Correct-restricted holds 100%, uniform 0% in the witness runs.
        assert!(witness[0].contains("100.0%"), "{}", witness[0]);
        assert!(witness[0].contains("0.0%"), "{}", witness[0]);
        let random: Vec<&str> = text.lines().filter(|l| l.contains("random")).collect();
        assert!(random[0].contains("100.0%"), "{}", random[0]);
    }
}
