//! Paper-style result tables: aligned console output plus CSV export.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A result table with a title, headers and string rows.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// The number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i] - cell.chars().count();
                let _ = write!(s, "| {}{} ", cell, " ".repeat(pad));
            }
            s.push('|');
            s
        };
        let header = line(&self.headers, &widths);
        let rule = "-".repeat(header.chars().count());
        let _ = writeln!(out, "{rule}");
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{rule}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        let _ = writeln!(out, "{rule}");
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn to_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Formats a ratio as a percentage string.
#[must_use]
pub fn pct(num: usize, den: usize) -> String {
    if den == 0 {
        "n/a".to_string()
    } else {
        format!("{:.1}%", 100.0 * num as f64 / den as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push(vec!["short".into(), "1".into()]);
        t.push(vec!["a-much-longer-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("| name"));
        assert!(s.contains("| a-much-longer-name | 22"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        let path = std::env::temp_dir().join("rfd_bench_table_test.csv");
        t.to_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(1, 2), "50.0%");
        assert_eq!(pct(0, 0), "n/a");
    }
}
