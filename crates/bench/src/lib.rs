//! # rfd-bench — the experiment harness of the DSN 2002 reproduction
//!
//! Regenerates every result of *A Realistic Look At Failure Detectors*
//! as a table (the paper is a theory paper with no numbered
//! tables/figures; the experiment set E1–E11 grew out of `DESIGN.md`
//! §3):
//!
//! | Exp | Paper source | Claim |
//! |-----|--------------|-------|
//! | E1  | Lemma 4.1    | realistic-detector consensus is total |
//! | E2  | Lemma 4.2    | `T_{D⇒P}` emulates a Perfect detector |
//! | E3  | Prop 5.1     | TRB ⟷ `P` |
//! | E4  | §6.2         | uniform ≻ correct-restricted consensus |
//! | E5  | §6.3         | `S ∩ R ⊂ P` (the collapse) |
//! | E6  | §6.1         | clairvoyance breaks the lower bound |
//! | E7  | §1.3         | QoS of adaptive heartbeat detectors |
//! | E8  | §1.3         | group membership emulates `P` |
//! | E9  | §1.2/§4      | the `◇S` majority crossover |
//! | E10 | §2.5         | class lattice containments are strict |
//! | E11 | §1.3         | online detection under churn (streaming driver) |
//! | E12 | §1.3         | partition-heal view reconvergence (heal-merge membership) |
//! | E13 | §1.1/§1.3    | the live decision service: consensus over emulated `P`, post-heal state transfer |
//!
//! Run `cargo run -p rfd-bench --bin experiments` for the full suite, or
//! `--bin experiments -- E7` for one experiment. Criterion
//! microbenchmarks live in `benches/microbench.rs`. `RFD_E12_UDP=1` /
//! `RFD_E13_UDP=1` append E12's and E13's wall-clock rows over real
//! loopback UDP sockets.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod estimators;
pub mod experiments;
pub mod table;

pub use estimators::Estimators;
pub use table::Table;
