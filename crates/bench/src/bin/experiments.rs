//! Experiment runner: regenerates every paper result as a table.
//!
//! Usage:
//!
//! ```text
//! experiments                # full suite
//! experiments --quick        # reduced seed counts
//! experiments E4 E7          # selected experiments
//! experiments --csv DIR      # also write one CSV per experiment
//! ```

use rfd_bench::experiments;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let selected: Vec<String> = args
        .iter()
        .filter(|a| a.starts_with('E') || a.starts_with('e'))
        .map(|a| a.to_uppercase())
        .collect();

    // Filter the catalog *before* running: selecting one experiment must
    // not pay for the rest of the catalog.
    let mut ran = 0usize;
    for (id, run) in experiments::catalog() {
        if !selected.is_empty() && !selected.iter().any(|s| s == id) {
            continue;
        }
        let table = run(quick);
        table.print();
        ran += 1;
        if let Some(dir) = &csv_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {dir:?}: {e}");
            } else {
                let path = dir.join(format!("{}.csv", id.to_lowercase()));
                if let Err(e) = table.to_csv(&path) {
                    eprintln!("cannot write {path:?}: {e}");
                }
            }
        }
    }
    if ran == 0 {
        eprintln!("no experiment matched; known ids: E1..E16");
        std::process::exit(2);
    }
}
